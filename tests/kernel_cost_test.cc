// Tests for the analytic FLOP/byte kernel cost models (tensor/kernel_cost)
// and their wiring into the per-op profiler: hand-counted expectations for
// matmul, conv2d, softmax, elementwise and reduction ops, the backward byte
// model, and the optimizer step samples.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/kernel_cost.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"
#include "util/obs/metrics.h"
#include "util/obs/obs.h"
#include "util/rng.h"

namespace sthsl {
namespace {

/// Saves the trace-enabled flag, clears all profiler and registry state, and
/// restores both on destruction so tests never leak state into each other.
class ObsSandbox {
 public:
  explicit ObsSandbox(bool enabled) : previous_(obs::SetTraceEnabled(enabled)) {
    obs::ResetProfiler();
    obs::MetricsRegistry::Global().Reset();
  }
  ~ObsSandbox() {
    obs::ResetProfiler();
    obs::MetricsRegistry::Global().Reset();
    obs::SetTraceEnabled(previous_);
  }

  ObsSandbox(const ObsSandbox&) = delete;
  ObsSandbox& operator=(const ObsSandbox&) = delete;

 private:
  bool previous_;
};

const obs::OpProfile* FindOp(const std::vector<obs::OpProfile>& ops,
                             const std::string& name) {
  for (const auto& op : ops) {
    if (op.name == name) return &op;
  }
  return nullptr;
}

TEST(KernelCostTest, MatMulFlopsHandCounted) {
  Rng rng(7);
  std::vector<Tensor> inputs = {Tensor::Randn({4, 8}, rng),
                                Tensor::Randn({8, 3}, rng)};
  const std::vector<int64_t> out_shape = {4, 3};
  // One multiply + one add per (m, k, n) cell: 2 * 4 * 8 * 3.
  EXPECT_EQ(ForwardOpFlops("matmul", inputs, out_shape), 192);
  // dA = dC * B^T and dB = A^T * dC each cost a forward's worth.
  EXPECT_EQ(BackwardOpFlops("matmul", inputs, out_shape), 384);
}

TEST(KernelCostTest, BatchedMatMulScalesWithBatch) {
  Rng rng(7);
  std::vector<Tensor> inputs = {Tensor::Randn({5, 4, 8}, rng),
                                Tensor::Randn({5, 8, 3}, rng)};
  const std::vector<int64_t> out_shape = {5, 4, 3};
  EXPECT_EQ(ForwardOpFlops("matmul", inputs, out_shape), 5 * 192);
}

TEST(KernelCostTest, Conv2dFlopsHandCounted) {
  Rng rng(7);
  // input (2, 3, 5, 5) * weight (4, 3, 3, 3), no padding -> out (2, 4, 3, 3).
  std::vector<Tensor> inputs = {Tensor::Randn({2, 3, 5, 5}, rng),
                                Tensor::Randn({4, 3, 3, 3}, rng),
                                Tensor::Randn({4}, rng)};
  const std::vector<int64_t> out_shape = {2, 4, 3, 3};
  // 2 * batch * weight_numel * oh * ow = 2 * 2 * 108 * 3 * 3.
  EXPECT_EQ(ForwardOpFlops("conv2d", inputs, out_shape), 3888);
  // Twice the forward, plus one bias-gradient add per output cell.
  EXPECT_EQ(BackwardOpFlops("conv2d", inputs, out_shape), 2 * 3888 + 72);
  // Without a bias input the extra adds disappear.
  inputs.pop_back();
  EXPECT_EQ(BackwardOpFlops("conv2d", inputs, out_shape), 2 * 3888);
}

TEST(KernelCostTest, SoftmaxElementwiseAndReduction) {
  Rng rng(7);
  std::vector<Tensor> one = {Tensor::Randn({4, 5}, rng)};
  std::vector<Tensor> two = {Tensor::Randn({4, 5}, rng),
                             Tensor::Randn({4, 5}, rng)};
  const std::vector<int64_t> out_shape = {4, 5};
  EXPECT_EQ(ForwardOpFlops("softmax", one, out_shape), 5 * 20);
  EXPECT_EQ(BackwardOpFlops("softmax", one, out_shape), 4 * 20);
  EXPECT_EQ(ForwardOpFlops("add", two, out_shape), 20);
  EXPECT_EQ(BackwardOpFlops("add", two, out_shape), 40);
  EXPECT_EQ(ForwardOpFlops("sigmoid", one, out_shape), 20);
  EXPECT_EQ(BackwardOpFlops("sigmoid", one, out_shape), 40);
  // Reductions sum every input element and have free gradients (broadcast).
  const std::vector<int64_t> scalar_shape = {1};
  EXPECT_EQ(ForwardOpFlops("sum_all", one, scalar_shape), 20);
  EXPECT_EQ(BackwardOpFlops("sum_all", one, scalar_shape), 0);
}

TEST(KernelCostTest, UnmodeledOpsReturnZeroNotAGuess) {
  Rng rng(7);
  std::vector<Tensor> inputs = {Tensor::Randn({4, 5}, rng)};
  EXPECT_EQ(ForwardOpFlops("reshape", inputs, {20}), 0);
  EXPECT_EQ(ForwardOpFlops("permute", inputs, {5, 4}), 0);
  EXPECT_EQ(ForwardOpFlops("no_such_op", inputs, {4, 5}), 0);
  EXPECT_EQ(BackwardOpFlops("no_such_op", inputs, {4, 5}), 0);
}

TEST(KernelCostTest, BackwardBytesModel) {
  Rng rng(7);
  std::vector<Tensor> inputs = {Tensor::Randn({4, 8}, rng),
                                Tensor::Randn({8, 3}, rng)};
  // Reads the output gradient (12 floats), reads both inputs and writes one
  // gradient per input (2 * (32 + 24) floats): 4 * (12 + 2 * 56) bytes.
  EXPECT_EQ(BackwardOpBytes(inputs, {4, 3}), 4 * (12 + 2 * 56));
}

TEST(KernelCostProfilerTest, MatMulTrainStepRecordsModeledCosts) {
  ObsSandbox sandbox(/*enabled=*/true);
  Rng rng(11);
  Tensor a = Tensor::Randn({4, 8}, rng, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({8, 3}, rng, 1.0f, /*requires_grad=*/true);
  Sum(MatMul(a, b)).Backward();

  const std::vector<obs::OpProfile> ops = obs::OpProfiles();
  const obs::OpProfile* matmul = FindOp(ops, "matmul");
  ASSERT_NE(matmul, nullptr);
  EXPECT_EQ(matmul->forward_calls, 1);
  EXPECT_EQ(matmul->forward_flops, 192);
  EXPECT_EQ(matmul->backward_calls, 1);
  EXPECT_EQ(matmul->backward_flops, 384);
  // Forward bytes: output + inputs; backward bytes: grad-out + 2x inputs.
  EXPECT_EQ(matmul->bytes_touched, 4 * (12 + 32 + 24));
  EXPECT_EQ(matmul->backward_bytes, 4 * (12 + 2 * 56));

  const obs::OpProfile* sum = FindOp(ops, "sum_all");
  ASSERT_NE(sum, nullptr);
  EXPECT_EQ(sum->forward_flops, 12);
}

TEST(KernelCostProfilerTest, SoftmaxBackwardAttributed) {
  ObsSandbox sandbox(/*enabled=*/true);
  Rng rng(11);
  Tensor x = Tensor::Randn({4, 5}, rng, 1.0f, /*requires_grad=*/true);
  Sum(Softmax(x, 1)).Backward();
  const obs::OpProfile* softmax = FindOp(obs::OpProfiles(), "softmax");
  ASSERT_NE(softmax, nullptr);
  EXPECT_EQ(softmax->forward_flops, 5 * 20);
  EXPECT_EQ(softmax->backward_flops, 4 * 20);
}

TEST(KernelCostProfilerTest, DisabledTraceRecordsNothing) {
  ObsSandbox sandbox(/*enabled=*/false);
  Rng rng(11);
  Tensor a = Tensor::Randn({4, 8}, rng, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({8, 3}, rng, 1.0f, /*requires_grad=*/true);
  Sum(MatMul(a, b)).Backward();
  EXPECT_TRUE(obs::OpProfiles().empty());
}

TEST(KernelCostProfilerTest, OptimizerStepsRecordAnalyticCosts) {
  ObsSandbox sandbox(/*enabled=*/true);
  constexpr int64_t kNumel = 64;
  Tensor sgd_param = Tensor::Ones({kNumel}, /*requires_grad=*/true);
  Tensor adam_param = Tensor::Ones({kNumel}, /*requires_grad=*/true);
  sgd_param.MutableGrad().assign(kNumel, 0.5f);
  adam_param.MutableGrad().assign(kNumel, 0.5f);

  Sgd sgd({sgd_param}, /*lr=*/0.1f, /*momentum=*/0.9f);
  sgd.Step();
  Adam adam({adam_param}, /*lr=*/0.01f, 0.9f, 0.999f, 1e-8f, 0.0f);
  adam.Step();

  const std::vector<obs::OpProfile> ops = obs::OpProfiles();
  const obs::OpProfile* sgd_op = FindOp(ops, "sgd_step");
  ASSERT_NE(sgd_op, nullptr);
  EXPECT_EQ(sgd_op->forward_flops, 6 * kNumel);  // momentum path
  EXPECT_EQ(sgd_op->bytes_touched, 5 * 4 * kNumel);
  const obs::OpProfile* adam_op = FindOp(ops, "adam_step");
  ASSERT_NE(adam_op, nullptr);
  EXPECT_EQ(adam_op->forward_flops, 16 * kNumel);
  EXPECT_EQ(adam_op->bytes_touched, 7 * 4 * kNumel);
}

}  // namespace
}  // namespace sthsl
