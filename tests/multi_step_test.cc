// Tests for the multi-day forecasting extension and the extended metrics
// (RMSE, hit-rate@k).

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/classical.h"
#include "core/multi_step.h"
#include "data/generator.h"
#include "metrics/metrics.h"
#include "tensor/ops.h"

namespace sthsl {
namespace {

CrimeDataset SmallCity() {
  CrimeGenConfig gen;
  gen.rows = 3;
  gen.cols = 3;
  gen.days = 120;
  gen.num_zones = 2;
  gen.category_totals = {300, 700, 320, 380};
  gen.seed = 21;
  return GenerateCrimeData(gen);
}

TEST(MultiStepTest, HorizonShapesAndNonNegativity) {
  CrimeDataset data = SmallCity();
  HistoricalAverage model;
  model.Fit(data, 100);
  auto forecasts = ForecastHorizon(model, data, 100, 5);
  ASSERT_EQ(forecasts.size(), 5u);
  for (const auto& f : forecasts) {
    EXPECT_EQ(f.Shape(), (std::vector<int64_t>{9, 4}));
    for (float v : f.Data()) EXPECT_GE(v, 0.0f);
  }
}

TEST(MultiStepTest, HorizonCanExtendBeyondDataset) {
  CrimeDataset data = SmallCity();
  HistoricalAverage model;
  model.Fit(data, data.num_days());
  // Start at the end of the data and forecast a week into the unknown.
  auto forecasts = ForecastHorizon(model, data, data.num_days(), 7);
  EXPECT_EQ(forecasts.size(), 7u);
}

TEST(MultiStepTest, FirstLeadMatchesSingleStepPrediction) {
  CrimeDataset data = SmallCity();
  HistoricalAverage model;
  model.Fit(data, 100);
  auto forecasts = ForecastHorizon(model, data, 100, 3);
  Tensor direct = model.PredictDay(data, 100);
  EXPECT_EQ(forecasts[0].Data(), direct.Data());
}

TEST(MultiStepTest, EvaluateHorizonReturnsPerLeadResults) {
  CrimeDataset data = SmallCity();
  HistoricalAverage model;
  model.Fit(data, 100);
  auto results = EvaluateHorizon(model, data, 100, 115, 3);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_GT(r.evaluated_entries, 0);
    EXPECT_GT(r.mae, 0.0);
  }
}

// -- extended metrics ---------------------------------------------------------

TEST(ExtendedMetricsTest, RmseAtLeastMae) {
  CrimeMetrics metrics(2, 1);
  metrics.AddDay(Tensor::FromVector({2, 1}, {0, 1}),
                 Tensor::FromVector({2, 1}, {2, 4}));
  EvalResult r = metrics.Overall();
  EXPECT_GE(r.rmse, r.mae);
  // errors are 2 and 3 -> MAE 2.5, RMSE sqrt(6.5).
  EXPECT_NEAR(r.mae, 2.5, 1e-9);
  EXPECT_NEAR(r.rmse, std::sqrt(6.5), 1e-6);
}

TEST(ExtendedMetricsTest, HitRatePerfectRanking) {
  CrimeMetrics metrics(3, 1);
  Tensor truth = Tensor::FromVector({3, 1}, {5, 1, 0});
  metrics.AddDay(truth, truth);  // identical ranking
  EXPECT_DOUBLE_EQ(metrics.HitRateAtK(1), 1.0);
}

TEST(ExtendedMetricsTest, HitRateInvertedRanking) {
  CrimeMetrics metrics(4, 1);
  Tensor pred = Tensor::FromVector({4, 1}, {0, 1, 2, 3});
  Tensor truth = Tensor::FromVector({4, 1}, {3, 2, 1, 0});
  metrics.AddDay(pred, truth);
  EXPECT_DOUBLE_EQ(metrics.HitRateAtK(1), 0.0);  // picks the worst region
  EXPECT_DOUBLE_EQ(metrics.HitRateAtK(4), 1.0);  // k = R always hits
}

TEST(ExtendedMetricsTest, HitRateAveragesOverDays) {
  CrimeMetrics metrics(2, 1);
  Tensor truth = Tensor::FromVector({2, 1}, {3, 0});
  metrics.AddDay(Tensor::FromVector({2, 1}, {1, 0}), truth);  // hit
  metrics.AddDay(Tensor::FromVector({2, 1}, {0, 1}), truth);  // miss
  EXPECT_DOUBLE_EQ(metrics.HitRateAtK(1), 0.5);
}

}  // namespace
}  // namespace sthsl
