// Tests for the run-ledger experiment log: JSONL schema and escaping of the
// writer, append semantics across runs, the final-eval model guard, and the
// end-to-end integration with the shared trainer (header + per-epoch
// gradient-flow records + final-eval record from a real Fit/Evaluate pass).

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/forecaster.h"
#include "core/neural_forecaster.h"
#include "data/generator.h"
#include "nn/layers.h"
#include "tensor/ops.h"
#include "util/obs/run_ledger.h"

namespace sthsl {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream file(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

obs::RunLedgerHeader MakeHeader(const std::string& model) {
  obs::RunLedgerHeader header;
  header.model = model;
  header.dataset_city = "NYC";
  header.dataset_rows = 3;
  header.dataset_cols = 3;
  header.dataset_days = 120;
  header.dataset_categories = 4;
  header.train_end = 100;
  header.train_seed = 7;
  header.config = {{"epochs", "2"}, {"lr", "0.005"}};
  return header;
}

// The global ledger is process-wide state; every test must leave it closed
// and unconfigured so tests stay order-independent.
class RunLedgerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::RunLedger::Global().EndRun();
    obs::RunLedger::Global().SetDefaultPath("");
  }
};

TEST_F(RunLedgerTest, HeaderEpochFinalRoundTrip) {
  const std::string path = TempPath("ledger_roundtrip.jsonl");
  std::remove(path.c_str());
  auto& ledger = obs::RunLedger::Global();

  ledger.BeginRun(MakeHeader("Tiny"), path);
  EXPECT_TRUE(ledger.Active());

  obs::RunLedgerEpoch epoch;
  epoch.epoch = 1;
  epoch.loss = 1.5;
  epoch.lr = 0.005;
  epoch.epoch_seconds = 0.25;
  epoch.windows = 16;
  epoch.grad_norm = 2.0;
  obs::RunLedgerParamStats stats;
  stats.name = "head.weight";
  stats.numel = 16;
  stats.grad_norm = 1.0;
  stats.weight_norm = 2.0;
  stats.update_ratio = 0.01;
  epoch.params.push_back(stats);
  ledger.RecordEpoch(epoch);

  obs::RunLedgerEval overall;
  overall.name = "overall";
  overall.mae = 0.5;
  overall.mape = 0.3;
  overall.rmse = 0.9;
  overall.entries = 12;
  ledger.RecordFinalEval("Tiny", "NYC", overall, {});
  EXPECT_FALSE(ledger.Active());

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"record\":\"header\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"schema\":1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"model\":\"Tiny\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"epochs\":2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"record\":\"epoch\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"head.weight\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"update_ratio\":0.01"), std::string::npos);
  EXPECT_NE(lines[2].find("\"record\":\"final\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"mae\":0.5"), std::string::npos);
}

TEST_F(RunLedgerTest, EscapesStringsAndRendersNonFiniteAsNull) {
  const std::string path = TempPath("ledger_escaping.jsonl");
  std::remove(path.c_str());
  auto& ledger = obs::RunLedger::Global();

  obs::RunLedgerHeader header = MakeHeader("Mo\"del\nX");
  header.dataset_city = "tab\tcity";
  ledger.BeginRun(header, path);

  obs::RunLedgerEpoch epoch;
  epoch.epoch = 1;
  epoch.loss = std::nan("");  // non-finite must render as null, not "nan"
  epoch.grad_norm = INFINITY;
  ledger.RecordEpoch(epoch);
  ledger.EndRun();

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);  // escaped newline must not split the line
  EXPECT_NE(lines[0].find("Mo\\\"del\\nX"), std::string::npos);
  EXPECT_NE(lines[0].find("tab\\tcity"), std::string::npos);
  EXPECT_NE(lines[1].find("\"loss\":null"), std::string::npos);
  EXPECT_NE(lines[1].find("\"grad_norm\":null"), std::string::npos);
  EXPECT_EQ(lines[1].find("nan"), std::string::npos);
  EXPECT_EQ(lines[1].find("inf"), std::string::npos);
}

TEST_F(RunLedgerTest, AppendsAcrossRunsWithIncreasingIds) {
  const std::string path = TempPath("ledger_append.jsonl");
  std::remove(path.c_str());
  auto& ledger = obs::RunLedger::Global();

  ledger.BeginRun(MakeHeader("A"), path);
  ledger.EndRun();
  ledger.BeginRun(MakeHeader("B"), path);
  ledger.EndRun();

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"model\":\"A\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"model\":\"B\""), std::string::npos);
  // Run ids must differ so a report can tell the runs apart.
  EXPECT_NE(lines[0].substr(0, lines[0].find("\"model\"")),
            lines[1].substr(0, lines[1].find("\"model\"")));
}

TEST_F(RunLedgerTest, FinalEvalGuardIgnoresOtherModels) {
  const std::string path = TempPath("ledger_guard.jsonl");
  std::remove(path.c_str());
  auto& ledger = obs::RunLedger::Global();

  ledger.BeginRun(MakeHeader("Neural"), path);
  obs::RunLedgerEval overall;
  overall.name = "overall";
  overall.mae = 9.0;
  // A classical baseline evaluated mid-run must not close or pollute the
  // neural model's open run.
  ledger.RecordFinalEval("HA", "NYC", overall, {});
  EXPECT_TRUE(ledger.Active());
  ledger.RecordFinalEval("Neural", "NYC", overall, {});
  EXPECT_FALSE(ledger.Active());

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("\"model\":\"Neural\""), std::string::npos);
}

TEST_F(RunLedgerTest, EventValueNanOmitsField) {
  const std::string path = TempPath("ledger_event.jsonl");
  std::remove(path.c_str());
  auto& ledger = obs::RunLedger::Global();

  ledger.BeginRun(MakeHeader("E"), path);
  ledger.RecordEvent("restore_best", 3, 0.75);
  ledger.RecordEvent("ema_final", 5, std::nan(""));
  ledger.EndRun();

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[1].find("\"kind\":\"restore_best\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"value\":0.75"), std::string::npos);
  EXPECT_NE(lines[2].find("\"kind\":\"ema_final\""), std::string::npos);
  EXPECT_EQ(lines[2].find("\"value\""), std::string::npos);
}

// -- Trainer integration ------------------------------------------------------

class TinyForecaster : public NeuralForecaster {
 public:
  explicit TinyForecaster(TrainConfig config) : NeuralForecaster(config) {}

  std::string Name() const override { return "Tiny"; }

 protected:
  void Prepare(const CrimeDataset& data, int64_t train_end) override {
    net_ = std::make_unique<Net>(data.num_categories(), rng_);
  }
  Tensor Forward(const Tensor& window, bool training) override {
    return net_->head.Forward(Mean(window, {1}));
  }
  Module* RootModule() override { return net_.get(); }

 private:
  struct Net : Module {
    Net(int64_t cats, Rng& rng) : head(cats, cats, rng) {
      RegisterModule("head", &head);
    }
    Linear head;
  };
  std::unique_ptr<Net> net_;
};

CrimeDataset SmallCity() {
  CrimeGenConfig gen;
  gen.rows = 3;
  gen.cols = 3;
  gen.days = 120;
  gen.num_zones = 2;
  gen.category_totals = {300, 700, 320, 380};
  gen.seed = 5;
  return GenerateCrimeData(gen);
}

TEST_F(RunLedgerTest, FitWritesHeaderEpochsAndFinalEval) {
  const std::string path = TempPath("ledger_fit.jsonl");
  std::remove(path.c_str());

  CrimeDataset data = SmallCity();
  TrainConfig config;
  config.window = 7;
  config.epochs = 2;
  config.max_steps_per_epoch = 4;
  config.batch_size = 2;
  config.validation_days = 14;
  config.validation_every = 1;
  config.seed = 3;
  config.run_log = path;
  TinyForecaster model(config);
  model.Fit(data, 100);
  EvaluateForecaster(model, data, 100, 120);

  const std::vector<std::string> lines = ReadLines(path);
  size_t headers = 0;
  size_t epochs = 0;
  size_t finals = 0;
  for (const std::string& line : lines) {
    if (line.find("\"record\":\"header\"") != std::string::npos) ++headers;
    if (line.find("\"record\":\"epoch\"") != std::string::npos) ++epochs;
    if (line.find("\"record\":\"final\"") != std::string::npos) ++finals;
  }
  EXPECT_EQ(headers, 1u);
  EXPECT_EQ(epochs, 2u);
  EXPECT_EQ(finals, 1u);

  // The header carries the full training config and dataset provenance.
  EXPECT_NE(lines[0].find("\"model\":\"Tiny\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"train_seed\":3"), std::string::npos);
  EXPECT_NE(lines[0].find("\"generator_seed\":5"), std::string::npos);
  EXPECT_NE(lines[0].find("\"window\":7"), std::string::npos);

  // Per-epoch grad-flow rows name exactly the module's parameter tensors.
  bool saw_weight = false;
  bool saw_bias = false;
  for (const std::string& line : lines) {
    if (line.find("\"record\":\"epoch\"") == std::string::npos) continue;
    EXPECT_NE(line.find("\"grad_norm\""), std::string::npos);
    EXPECT_NE(line.find("\"update_ratio\""), std::string::npos);
    EXPECT_NE(line.find("\"zero_grad_frac\""), std::string::npos);
    if (line.find("\"name\":\"head.weight\"") != std::string::npos) {
      saw_weight = true;
    }
    if (line.find("\"name\":\"head.bias\"") != std::string::npos) {
      saw_bias = true;
    }
  }
  EXPECT_TRUE(saw_weight);
  EXPECT_TRUE(saw_bias);

  // The final record closed the run with the masked test metrics.
  EXPECT_FALSE(obs::RunLedger::Global().Active());
  EXPECT_NE(lines.back().find("\"overall\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"mae\":"), std::string::npos);
}

TEST_F(RunLedgerTest, NoLedgerPathMeansNoFile) {
  const std::string path = TempPath("ledger_disabled.jsonl");
  std::remove(path.c_str());

  CrimeDataset data = SmallCity();
  TrainConfig config;
  config.window = 7;
  config.epochs = 1;
  config.max_steps_per_epoch = 2;
  config.validation_days = 0;
  TinyForecaster model(config);
  model.Fit(data, 100);

  EXPECT_FALSE(obs::RunLedger::Global().Active());
  std::ifstream file(path);
  EXPECT_FALSE(file.good());
}

}  // namespace
}  // namespace sthsl
