// Tests for the baseline forecasters: classical models, graph utilities,
// and a smoke sweep fitting every registered model on a tiny city.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "baselines/classical.h"
#include "baselines/graph_utils.h"
#include "baselines/registry.h"
#include "core/forecaster.h"
#include "data/generator.h"

namespace sthsl {
namespace {

CrimeDataset TinyCity(int64_t days = 90, uint64_t seed = 17) {
  CrimeGenConfig gen;
  gen.rows = 4;
  gen.cols = 4;
  gen.days = days;
  gen.num_zones = 3;
  gen.category_totals = {450, 1000, 460, 560};
  gen.seed = seed;
  return GenerateCrimeData(gen);
}

TEST(HistoricalAverageTest, LearnsPerBucketMeans) {
  // Constant series: HA must reproduce the constant exactly.
  std::vector<float> counts(2 * 14 * 1, 0.0f);
  for (int64_t t = 0; t < 14; ++t) counts[static_cast<size_t>(t)] = 3.0f;
  CrimeDataset data("c", 2, 1, {"A"},
                    Tensor::FromVector({2, 14, 1}, counts));
  HistoricalAverage ha;
  ha.Fit(data, 14);
  Tensor pred = ha.PredictDay(data, 13);
  EXPECT_FLOAT_EQ(pred.At({0, 0}), 3.0f);
  EXPECT_FLOAT_EQ(pred.At({1, 0}), 0.0f);
}

TEST(HistoricalAverageTest, DayOfWeekConditioning) {
  // Crime only on day-of-week 0.
  std::vector<float> counts(1 * 28 * 1, 0.0f);
  for (int64_t t = 0; t < 28; t += 7) counts[static_cast<size_t>(t)] = 7.0f;
  CrimeDataset data("c", 1, 1, {"A"},
                    Tensor::FromVector({1, 28, 1}, counts));
  HistoricalAverage ha(/*day_of_week=*/true);
  ha.Fit(data, 28);
  EXPECT_FLOAT_EQ(ha.PredictDay(data, 28).At({0, 0}), 7.0f);  // 28 % 7 == 0
  EXPECT_FLOAT_EQ(ha.PredictDay(data, 29).At({0, 0}), 0.0f);
}

TEST(ArimaTest, TracksLinearTrend) {
  // x_t = t: first difference is constant 1, so the forecast of day T is
  // close to T (ARIMA with d=1 nails deterministic trends).
  const int64_t days = 60;
  std::vector<float> counts(static_cast<size_t>(days));
  for (int64_t t = 0; t < days; ++t) {
    counts[static_cast<size_t>(t)] = static_cast<float>(t);
  }
  CrimeDataset data("c", 1, 1, {"A"},
                    Tensor::FromVector({1, days, 1}, counts));
  Arima arima;
  arima.Fit(data, 50);
  Tensor pred = arima.PredictDay(data, 55);
  EXPECT_NEAR(pred.At({0, 0}), 55.0f, 2.0f);
}

TEST(ArimaTest, ConstantSeriesPredictsConstant) {
  std::vector<float> counts(40, 2.0f);
  CrimeDataset data("c", 1, 1, {"A"},
                    Tensor::FromVector({1, 40, 1}, counts));
  Arima arima;
  arima.Fit(data, 35);
  EXPECT_NEAR(arima.PredictDay(data, 38).At({0, 0}), 2.0f, 0.2f);
}

TEST(ArimaTest, ShortSeriesFallsBackGracefully) {
  std::vector<float> counts(8, 1.0f);
  CrimeDataset data("c", 1, 1, {"A"},
                    Tensor::FromVector({1, 8, 1}, counts));
  Arima arima;
  arima.Fit(data, 8);
  Tensor pred = arima.PredictDay(data, 8);
  EXPECT_TRUE(std::isfinite(pred.At({0, 0})));
  EXPECT_GE(pred.At({0, 0}), 0.0f);
}

TEST(SvrTest, LearnsPersistentSignal) {
  // Strongly autocorrelated series: prediction should correlate with the
  // recent past much better than a zero predictor.
  CrimeDataset data = TinyCity(120);
  Svr svr;
  svr.Fit(data, 100);
  CrimeMetrics metrics = EvaluateForecaster(svr, data, 100, 120);
  CrimeMetrics zero(data.num_regions(), data.num_categories());
  for (int64_t t = 100; t < 120; ++t) {
    zero.AddDay(Tensor::Zeros({16, 4}), data.TargetDay(t));
  }
  EXPECT_LT(metrics.Overall().mae, zero.Overall().mae);
}

// -- Graph utilities -------------------------------------------------------------

TEST(GraphUtilsTest, GridAdjacencyRowStochastic) {
  Tensor adj = GridAdjacency(3, 4);
  EXPECT_EQ(adj.Shape(), (std::vector<int64_t>{12, 12}));
  for (int64_t r = 0; r < 12; ++r) {
    float row_sum = 0.0f;
    for (int64_t c = 0; c < 12; ++c) row_sum += adj.At({r, c});
    EXPECT_NEAR(row_sum, 1.0f, 1e-5f);
    EXPECT_GT(adj.At({r, r}), 0.0f);  // self loop
  }
  // Corner region (0,0) connects to self + right + down = 3 entries.
  int nonzero = 0;
  for (int64_t c = 0; c < 12; ++c) nonzero += (adj.At({0, c}) > 0.0f);
  EXPECT_EQ(nonzero, 3);
}

TEST(GraphUtilsTest, SimilarityAdjacencyHasKNeighbors) {
  CrimeDataset data = TinyCity(60);
  Tensor adj = SimilarityAdjacency(data, 50, 4);
  for (int64_t r = 0; r < data.num_regions(); ++r) {
    int nonzero = 0;
    float row_sum = 0.0f;
    for (int64_t c = 0; c < data.num_regions(); ++c) {
      nonzero += (adj.At({r, c}) > 0.0f);
      row_sum += adj.At({r, c});
    }
    EXPECT_EQ(nonzero, 5);  // self + k
    EXPECT_NEAR(row_sum, 1.0f, 1e-5f);
  }
}

TEST(GraphUtilsTest, StaticHypergraphShapeAndNormalization) {
  CrimeDataset data = TinyCity(60);
  Tensor incidence = StaticHypergraph(data, 50, 6, 5);
  EXPECT_EQ(incidence.Shape(), (std::vector<int64_t>{6, 16}));
  for (int64_t e = 0; e < 6; ++e) {
    float row_sum = 0.0f;
    int nonzero = 0;
    for (int64_t r = 0; r < 16; ++r) {
      row_sum += incidence.At({e, r});
      nonzero += (incidence.At({e, r}) > 0.0f);
    }
    EXPECT_NEAR(row_sum, 1.0f, 1e-5f);
    EXPECT_EQ(nonzero, 5);
  }
}

// -- Registry smoke sweep ----------------------------------------------------------

TEST(RegistryTest, NamesAreUniqueAndResolvable) {
  auto names = AllModelNames();
  EXPECT_EQ(names.size(), 17u);  // 16 Table III rows + HA
  ComparisonConfig config = MakeComparisonConfig(14, 1, 2, 5);
  for (const auto& name : names) {
    auto model = MakeForecaster(name, config.baseline, config.sthsl);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->Name(), name);
  }
}

TEST(RegistryTest, EfficiencySubsetIsSubset) {
  auto all = AllModelNames();
  for (const auto& name : EfficiencyStudyModelNames()) {
    bool found = false;
    for (const auto& n : all) found |= (n == name);
    EXPECT_TRUE(found) << name;
  }
}

// Every model fits and produces finite, non-negative predictions on a tiny
// synthetic city. This is the integration test of the whole model zoo.
TEST(RegistryTest, AllModelsFitAndPredict) {
  CrimeDataset data = TinyCity(70);
  ComparisonConfig config = MakeComparisonConfig(/*window=*/14, /*epochs=*/2,
                                                 /*steps_per_epoch=*/3,
                                                 /*seed=*/9);
  config.baseline.hidden = 8;
  config.sthsl.dim = 4;
  config.sthsl.num_hyperedges = 8;
  for (const auto& name : AllModelNames()) {
    SCOPED_TRACE(name);
    auto model = MakeForecaster(name, config.baseline, config.sthsl);
    model->Fit(data, 56);
    Tensor pred = model->PredictDay(data, 60);
    ASSERT_EQ(pred.Shape(), (std::vector<int64_t>{16, 4}));
    for (float v : pred.Data()) {
      ASSERT_TRUE(std::isfinite(v));
      ASSERT_GE(v, 0.0f);
    }
  }
}

}  // namespace
}  // namespace sthsl
