// Tests for the NN module layer: parameter registration, layer forward
// semantics, gradient flow through composed modules, and a small end-to-end
// training sanity check.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "util/rng.h"

namespace sthsl {
namespace {

TEST(ModuleBase, LinearRegistersParameters) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  EXPECT_EQ(layer.Parameters().size(), 2u);  // weight + bias
  EXPECT_EQ(layer.NumParameters(), 4 * 3 + 3);
  Linear no_bias(4, 3, rng, /*with_bias=*/false);
  EXPECT_EQ(no_bias.Parameters().size(), 1u);
}

TEST(ModuleBase, NamedParametersNested) {
  Rng rng(2);
  GruCell cell(3, 5, rng);
  auto named = cell.NamedParameters();
  ASSERT_EQ(named.size(), 3u);  // input W+b, hidden W
  EXPECT_EQ(named[0].first, "input_proj.weight");
  EXPECT_EQ(named[2].first, "hidden_proj.weight");
}

TEST(ModuleBase, TrainingFlagPropagates) {
  Rng rng(3);
  Gru gru(2, 4, rng);
  gru.SetTraining(false);
  EXPECT_FALSE(gru.IsTraining());
  gru.SetTraining(true);
  EXPECT_TRUE(gru.IsTraining());
}

TEST(LinearLayer, ForwardShapeAndValue) {
  Rng rng(4);
  Linear layer(2, 2, rng);
  // Overwrite with known values: y = xW + b.
  auto params = layer.Parameters();
  params[0].MutableData() = {1, 2, 3, 4};  // W (2x2) row-major
  params[1].MutableData() = {10, 20};      // b
  Tensor x = Tensor::FromVector({1, 2}, {1, 1});
  Tensor y = layer.Forward(x);
  EXPECT_FLOAT_EQ(y.At({0, 0}), 1 + 3 + 10);
  EXPECT_FLOAT_EQ(y.At({0, 1}), 2 + 4 + 20);
}

TEST(LinearLayer, HandlesLeadingDims) {
  Rng rng(5);
  Linear layer(3, 4, rng);
  Tensor x = Tensor::Ones({2, 5, 3});
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.Shape(), (std::vector<int64_t>{2, 5, 4}));
}

TEST(ConvLayers, SamePaddingPreservesSpatialDims) {
  Rng rng(6);
  Conv2dLayer conv(3, 8, 3, 3, rng);
  Tensor x = Tensor::Ones({2, 3, 5, 7});
  Tensor y = conv.Forward(x);
  EXPECT_EQ(y.Shape(), (std::vector<int64_t>{2, 8, 5, 7}));

  Conv1dLayer conv1(3, 6, 3, rng);
  Tensor x1 = Tensor::Ones({2, 3, 9});
  EXPECT_EQ(conv1.Forward(x1).Shape(), (std::vector<int64_t>{2, 6, 9}));
}

TEST(DropoutLayerTest, RespectsTrainingMode) {
  Rng rng(7);
  DropoutLayer drop(0.5f, rng);
  Tensor x = Tensor::Ones({256});
  drop.SetTraining(false);
  Tensor eval_out = drop.Forward(x);
  for (float v : eval_out.Data()) EXPECT_EQ(v, 1.0f);
  drop.SetTraining(true);
  Tensor train_out = drop.Forward(x);
  int zeros = 0;
  for (float v : train_out.Data()) zeros += (v == 0.0f);
  EXPECT_GT(zeros, 0);
}

TEST(LayerNormTest, NormalizesLastDim) {
  Rng rng(8);
  LayerNorm norm(4);
  Tensor x = Tensor::FromVector({2, 4}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor y = norm.Forward(x);
  for (int64_t r = 0; r < 2; ++r) {
    float mean = 0.0f;
    for (int64_t c = 0; c < 4; ++c) mean += y.At({r, c});
    EXPECT_NEAR(mean / 4.0f, 0.0f, 1e-5f);
    float var = 0.0f;
    for (int64_t c = 0; c < 4; ++c) var += y.At({r, c}) * y.At({r, c});
    EXPECT_NEAR(var / 4.0f, 1.0f, 1e-3f);
  }
}

TEST(GruTest, OutputShapes) {
  Rng rng(9);
  Gru gru(3, 6, rng);
  Tensor x = Tensor::Ones({2, 5, 3});
  Tensor all = gru.Forward(x);
  EXPECT_EQ(all.Shape(), (std::vector<int64_t>{2, 5, 6}));
  Tensor last = gru.ForwardLast(x);
  EXPECT_EQ(last.Shape(), (std::vector<int64_t>{2, 6}));
  // Last slice of full output equals ForwardLast.
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t h = 0; h < 6; ++h) {
      EXPECT_NEAR(all.At({b, 4, h}), last.At({b, h}), 1e-6f);
    }
  }
}

TEST(GruTest, HiddenStateStaysBounded) {
  Rng rng(10);
  Gru gru(2, 4, rng);
  Tensor x = Tensor::Full({1, 50, 2}, 5.0f);
  Tensor h = gru.ForwardLast(x);
  for (float v : h.Data()) {
    EXPECT_LT(std::fabs(v), 1.0f + 1e-5f);  // tanh-bounded dynamics
  }
}

TEST(AttentionTest, ShapePreservedAndRowsMix) {
  Rng rng(11);
  MultiHeadSelfAttention attn(8, 2, rng);
  Tensor x = Tensor::Randn({2, 5, 8}, rng);
  Tensor y = attn.Forward(x);
  EXPECT_EQ(y.Shape(), (std::vector<int64_t>{2, 5, 8}));
}

TEST(AttentionTest, GradientFlowsToAllProjections) {
  Rng rng(12);
  MultiHeadSelfAttention attn(4, 2, rng);
  Tensor x = Tensor::Randn({1, 3, 4}, rng);
  Tensor loss = Sum(Square(attn.Forward(x)));
  loss.Backward();
  for (const auto& p : attn.Parameters()) {
    ASSERT_FALSE(p.Grad().empty());
    float norm = 0.0f;
    for (float g : p.Grad()) norm += g * g;
    EXPECT_GT(norm, 0.0f) << "a projection received zero gradient";
  }
}

// -- Optimizers -------------------------------------------------------------------

TEST(Optimizers, SgdQuadraticConverges) {
  Tensor w = Tensor::FromVector({1}, {5.0f}, /*requires_grad=*/true);
  Sgd opt({w}, /*lr=*/0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.ZeroGrad();
    Tensor loss = Sum(Square(w - 2.0f));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.Item(), 2.0f, 1e-3f);
}

TEST(Optimizers, SgdMomentumConverges) {
  Tensor w = Tensor::FromVector({1}, {5.0f}, /*requires_grad=*/true);
  Sgd opt({w}, /*lr=*/0.05f, /*momentum=*/0.9f);
  for (int i = 0; i < 200; ++i) {
    opt.ZeroGrad();
    Sum(Square(w - 2.0f)).Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.Item(), 2.0f, 1e-2f);
}

TEST(Optimizers, AdamConverges) {
  Tensor w = Tensor::FromVector({2}, {5.0f, -3.0f}, /*requires_grad=*/true);
  Adam opt({w}, /*lr=*/0.1f);
  for (int i = 0; i < 300; ++i) {
    opt.ZeroGrad();
    Tensor target = Tensor::FromVector({2}, {1.0f, 2.0f});
    Sum(Square(w - target)).Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.At(static_cast<int64_t>(0)), 1.0f, 1e-2f);
  EXPECT_NEAR(w.At(1), 2.0f, 1e-2f);
}

TEST(Optimizers, WeightDecayShrinksWeights) {
  Tensor w = Tensor::FromVector({1}, {1.0f}, /*requires_grad=*/true);
  Sgd opt({w}, /*lr=*/0.1f, /*momentum=*/0.0f, /*weight_decay=*/0.5f);
  // Loss gradient is zero; only decay acts.
  opt.ZeroGrad();
  Sum(w * 0.0f).Backward();
  opt.Step();
  EXPECT_NEAR(w.Item(), 1.0f - 0.1f * 0.5f, 1e-6f);
}

// -- End-to-end -----------------------------------------------------------------

TEST(EndToEnd, TwoLayerMlpLearnsXor) {
  Rng rng(13);
  Linear l1(2, 8, rng);
  Linear l2(8, 1, rng);
  std::vector<Tensor> params = l1.Parameters();
  auto p2 = l2.Parameters();
  params.insert(params.end(), p2.begin(), p2.end());
  Adam opt(params, 0.05f);

  Tensor x = Tensor::FromVector({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  Tensor y = Tensor::FromVector({4, 1}, {0, 1, 1, 0});

  float final_loss = 1e9f;
  for (int epoch = 0; epoch < 500; ++epoch) {
    opt.ZeroGrad();
    Tensor pred = l2.Forward(Tanh(l1.Forward(x)));
    Tensor loss = MseLoss(pred, y);
    loss.Backward();
    opt.Step();
    final_loss = loss.Item();
  }
  EXPECT_LT(final_loss, 0.01f);
}

TEST(EndToEnd, GruLearnsToSumSequence) {
  Rng rng(14);
  Gru gru(1, 8, rng);
  Linear head(8, 1, rng);
  std::vector<Tensor> params = gru.Parameters();
  auto ph = head.Parameters();
  params.insert(params.end(), ph.begin(), ph.end());
  Adam opt(params, 0.02f);

  // Sequences of 4 values in [0, 0.25]; target is their sum.
  const int64_t batch = 16;
  std::vector<float> xs;
  std::vector<float> ys;
  Rng data_rng(15);
  for (int64_t b = 0; b < batch; ++b) {
    float total = 0.0f;
    for (int t = 0; t < 4; ++t) {
      const float v = static_cast<float>(data_rng.Uniform(0.0, 0.25));
      xs.push_back(v);
      total += v;
    }
    ys.push_back(total);
  }
  Tensor x = Tensor::FromVector({batch, 4, 1}, xs);
  Tensor y = Tensor::FromVector({batch, 1}, ys);

  float first_loss = 0.0f;
  float last_loss = 0.0f;
  for (int epoch = 0; epoch < 200; ++epoch) {
    opt.ZeroGrad();
    Tensor pred = head.Forward(gru.ForwardLast(x));
    Tensor loss = MseLoss(pred, y);
    loss.Backward();
    opt.Step();
    if (epoch == 0) first_loss = loss.Item();
    last_loss = loss.Item();
  }
  EXPECT_LT(last_loss, first_loss * 0.2f);
}

}  // namespace
}  // namespace sthsl
