// Tests for the raw-incident rasterization pipeline (the paper's grid-based
// map segmentation preprocessing) and its CSV round-trip.

#include <cstdio>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/incidents.h"

namespace sthsl {
namespace {

constexpr int64_t kDay = 24 * 60 * 60;

GridSpec UnitGrid(int64_t rows, int64_t cols) {
  GridSpec grid;
  grid.min_longitude = -74.0;
  grid.max_longitude = -73.0;
  grid.min_latitude = 40.0;
  grid.max_latitude = 41.0;
  grid.rows = rows;
  grid.cols = cols;
  return grid;
}

IncidentRecord Record(const std::string& cat, int64_t day, double lon_frac,
                      double lat_frac) {
  IncidentRecord record;
  record.category = cat;
  record.timestamp_seconds = day * kDay + 3600;
  record.longitude = -74.0 + lon_frac;
  record.latitude = 40.0 + lat_frac;
  return record;
}

TEST(RasterizeTest, MapsRecordsToCells) {
  GridSpec grid = UnitGrid(2, 2);
  std::vector<IncidentRecord> records = {
      Record("Theft", 0, 0.1, 0.1),   // row 0, col 0 -> region 0
      Record("Theft", 0, 0.9, 0.1),   // row 0, col 1 -> region 1
      Record("Theft", 1, 0.1, 0.9),   // row 1, col 0 -> region 2
      Record("Battery", 1, 0.9, 0.9)  // row 1, col 1 -> region 3
  };
  auto result = RasterizeIncidents(records, grid, {"Theft", "Battery"}, 0, 3,
                                   "test");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const CrimeDataset& data = result.value().dataset;
  EXPECT_EQ(result.value().accepted, 4);
  EXPECT_EQ(data.Count(0, 0, 0), 1.0f);
  EXPECT_EQ(data.Count(1, 0, 0), 1.0f);
  EXPECT_EQ(data.Count(2, 1, 0), 1.0f);
  EXPECT_EQ(data.Count(3, 1, 1), 1.0f);
  EXPECT_EQ(data.Count(3, 1, 0), 0.0f);
}

TEST(RasterizeTest, DropsAndCountsBadRecords) {
  GridSpec grid = UnitGrid(2, 2);
  std::vector<IncidentRecord> records = {
      Record("Theft", 0, 0.5, 0.5),
      Record("Arson", 0, 0.5, 0.5),   // unknown category
      Record("Theft", 9, 0.5, 0.5),   // beyond the day span
      Record("Theft", 0, 1.5, 0.5),   // outside the bounding box
  };
  auto result =
      RasterizeIncidents(records, grid, {"Theft"}, 0, 3, "test");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().accepted, 1);
  EXPECT_EQ(result.value().dropped_unknown_category, 1);
  EXPECT_EQ(result.value().dropped_out_of_bounds, 2);
}

TEST(RasterizeTest, BoundaryCoordinatesLandInLastCell) {
  GridSpec grid = UnitGrid(2, 2);
  std::vector<IncidentRecord> records = {Record("Theft", 0, 1.0, 1.0)};
  auto result =
      RasterizeIncidents(records, grid, {"Theft"}, 0, 1, "test");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().dataset.Count(3, 0, 0), 1.0f);  // region 3
}

TEST(RasterizeTest, RejectsDegenerateInputs) {
  GridSpec grid = UnitGrid(2, 2);
  grid.max_longitude = grid.min_longitude;  // degenerate box
  auto result = RasterizeIncidents({}, grid, {"Theft"}, 0, 1, "x");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);

  auto no_cats = RasterizeIncidents({}, UnitGrid(2, 2), {}, 0, 1, "x");
  EXPECT_FALSE(no_cats.ok());
}

TEST(RasterizeTest, SynthesizedIncidentsRoundTripExactly) {
  // dataset -> point records -> rasterize must reproduce the counts.
  CrimeGenConfig gen;
  gen.rows = 3;
  gen.cols = 4;
  gen.days = 20;
  gen.num_zones = 2;
  gen.category_totals = {80, 160, 90, 100};
  gen.seed = 31;
  CrimeDataset data = GenerateCrimeData(gen);

  GridSpec grid = UnitGrid(3, 4);
  Rng rng(5);
  auto records = SynthesizeIncidents(data, grid, 0, rng);
  auto result = RasterizeIncidents(records, grid, data.category_names(), 0,
                                   data.num_days(), data.city_name());
  ASSERT_TRUE(result.ok());
  const CrimeDataset& rebuilt = result.value().dataset;
  EXPECT_EQ(result.value().accepted,
            static_cast<int64_t>(records.size()));
  for (int64_t r = 0; r < data.num_regions(); ++r) {
    for (int64_t t = 0; t < data.num_days(); ++t) {
      for (int64_t c = 0; c < data.num_categories(); ++c) {
        ASSERT_EQ(rebuilt.Count(r, t, c), data.Count(r, t, c))
            << "r=" << r << " t=" << t << " c=" << c;
      }
    }
  }
}

TEST(RasterizeTest, IncidentCsvRoundTrip) {
  std::vector<IncidentRecord> records = {Record("Theft", 2, 0.25, 0.75),
                                         Record("Battery", 5, 0.5, 0.5)};
  const std::string path = "/tmp/sthsl_incidents_test.csv";
  ASSERT_TRUE(SaveIncidentsCsv(path, records).ok());
  auto loaded = LoadIncidentsCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].category, "Theft");
  EXPECT_EQ(loaded.value()[0].timestamp_seconds, 2 * kDay + 3600);
  EXPECT_NEAR(loaded.value()[1].latitude, 40.5, 1e-6);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sthsl
