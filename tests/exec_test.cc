// Tests for the deterministic parallel execution layer (src/exec): pool
// startup/shutdown, chunk coverage, nested-region fallback, exception
// propagation, grain edge cases, fixed-chunk invariance, scratch leasing,
// obs attribution — and the end-to-end determinism contract: forward
// losses, gradients, Adam updates and checkpoint bytes are bitwise
// identical at 1 and 4 threads.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/sthsl_model.h"
#include "exec/exec.h"
#include "nn/serialization.h"
#include "simd/simd.h"
#include "tensor/fusion.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"
#include "util/obs/metrics.h"
#include "util/obs/obs.h"
#include "util/rng.h"

namespace sthsl {
namespace {

// Restores the configured thread count on scope exit so tests stay
// order-independent.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : previous_(exec::ThreadCount()) {}
  ~ThreadCountGuard() { exec::SetThreadCount(previous_); }

  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  int previous_;
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(ExecConfig, ThreadCountClampsAndOverrides) {
  ThreadCountGuard guard;
  EXPECT_GE(exec::HardwareThreadCount(), 1);
  exec::SetThreadCount(3);
  EXPECT_EQ(exec::ThreadCount(), 3);
  exec::SetThreadCount(0);
  EXPECT_EQ(exec::ThreadCount(), 1);
  exec::SetThreadCount(-7);
  EXPECT_EQ(exec::ThreadCount(), 1);
}

TEST(ExecParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  exec::SetThreadCount(4);
  constexpr int64_t kN = 100000;
  // Chunks own disjoint index ranges, so plain (non-atomic) counters are
  // race-free by the layer's own contract.
  std::vector<int> hits(static_cast<size_t>(kN), 0);
  exec::ParallelFor(0, kN, 8, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)], 1) << "index " << i;
  }
}

TEST(ExecParallelFor, SmallRangeRunsInlineAsOneChunk) {
  ThreadCountGuard guard;
  exec::SetThreadCount(8);
  int calls = 0;
  int64_t begin = -1;
  int64_t end = -1;
  exec::ParallelFor(3, 10, 16, [&](int64_t b, int64_t e) {
    ++calls;
    begin = b;
    end = e;
    EXPECT_FALSE(exec::InParallelRegion());
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(begin, 3);
  EXPECT_EQ(end, 10);
}

TEST(ExecParallelFor, GrainEdgeCases) {
  ThreadCountGuard guard;
  exec::SetThreadCount(4);
  int calls = 0;
  exec::ParallelFor(0, 0, 1, [&](int64_t, int64_t) { ++calls; });
  exec::ParallelFor(5, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);  // empty and inverted ranges never invoke the body

  // Zero / negative grain behaves as grain 1.
  std::vector<int> hits(64, 0);
  exec::ParallelFor(0, 64, 0, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ExecParallelFor, NestedRegionsFallBackToSerialInline) {
  ThreadCountGuard guard;
  exec::SetThreadCount(4);
  constexpr int64_t kN = 4096;
  std::vector<int> hits(static_cast<size_t>(kN), 0);
  std::atomic<int> outer_chunks{0};
  std::atomic<int> nested_calls{0};
  exec::ParallelFor(0, kN, 1, [&](int64_t b, int64_t e) {
    outer_chunks.fetch_add(1);
    EXPECT_TRUE(exec::InParallelRegion());
    exec::ParallelFor(b, e, 1, [&](int64_t ib, int64_t ie) {
      nested_calls.fetch_add(1);
      for (int64_t i = ib; i < ie; ++i) ++hits[static_cast<size_t>(i)];
    });
  });
  // Each nested launch collapsed to exactly one inline call per outer chunk.
  EXPECT_EQ(nested_calls.load(), outer_chunks.load());
  EXPECT_EQ(outer_chunks.load(), 4);  // min(threads, range) chunks
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)], 1);
  }
  EXPECT_FALSE(exec::InParallelRegion());
}

TEST(ExecParallelFor, PropagatesChunkExceptionAndPoolSurvives) {
  ThreadCountGuard guard;
  exec::SetThreadCount(4);
  EXPECT_THROW(
      exec::ParallelFor(0, int64_t{1} << 16, 1,
                        [](int64_t b, int64_t) {
                          if (b == 0) throw std::runtime_error("chunk failed");
                        }),
      std::runtime_error);

  // The pool must stay usable after a failed region.
  constexpr int64_t kN = 4096;
  std::vector<int> hits(static_cast<size_t>(kN), 0);
  exec::ParallelFor(0, kN, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)], 1);
  }
}

TEST(ExecPool, ShutdownRestartsLazily) {
  ThreadCountGuard guard;
  exec::SetThreadCount(4);
  std::vector<int> hits(1024, 0);
  auto run = [&hits] {
    std::fill(hits.begin(), hits.end(), 0);
    exec::ParallelFor(0, 1024, 1, [&hits](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
    });
    for (int h : hits) ASSERT_EQ(h, 1);
  };
  run();
  exec::ShutdownPool();
  run();  // pool restarts lazily on the next launch
  exec::ShutdownPool();
}

TEST(ExecFixedChunks, BoundariesIndependentOfThreadCount) {
  ThreadCountGuard guard;
  constexpr int64_t kRange = 1000;
  constexpr int64_t kGrain = 64;
  const int64_t chunks = exec::FixedChunkCount(kRange, kGrain);
  EXPECT_EQ(chunks, (kRange + kGrain - 1) / kGrain);

  auto boundaries = [&](int threads) {
    exec::SetThreadCount(threads);
    std::vector<std::pair<int64_t, int64_t>> out(
        static_cast<size_t>(chunks), {-1, -1});
    exec::ParallelForFixedChunks(0, kRange, kGrain,
                                 [&](int64_t c, int64_t b, int64_t e) {
                                   out[static_cast<size_t>(c)] = {b, e};
                                 });
    return out;
  };
  const auto serial = boundaries(1);
  EXPECT_EQ(serial, boundaries(2));
  EXPECT_EQ(serial, boundaries(4));
  EXPECT_EQ(serial, boundaries(8));
  // Chunks tile [0, range) in order.
  int64_t cursor = 0;
  for (const auto& [b, e] : serial) {
    EXPECT_EQ(b, cursor);
    EXPECT_GT(e, b);
    cursor = e;
  }
  EXPECT_EQ(cursor, kRange);
}

TEST(ExecReduce, BitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(11);
  Tensor t = Tensor::Randn({100000}, rng);
  const float* data = t.Data().data();
  const auto sum = [&](int threads) {
    exec::SetThreadCount(threads);
    return exec::ParallelReduceDouble(0, t.Numel(), 1024,
                                      [data](int64_t b, int64_t e) {
                                        double part = 0.0;
                                        for (int64_t i = b; i < e; ++i) {
                                          part += data[i];
                                        }
                                        return part;
                                      });
  };
  const double serial = sum(1);
  EXPECT_EQ(serial, sum(2));
  EXPECT_EQ(serial, sum(4));
  EXPECT_EQ(serial, sum(8));
}

TEST(ExecScratch, LeaseReusesThreadLocalBuffers) {
  float* first = nullptr;
  {
    exec::ScratchLease lease(1024);
    ASSERT_NE(lease.data(), nullptr);
    EXPECT_EQ(lease.size(), 1024u);
    lease.data()[0] = 1.0f;
    lease.data()[1023] = 2.0f;
    first = lease.data();
  }
  {
    // A smaller follow-up lease reuses the retained buffer, no reallocation.
    exec::ScratchLease lease(512);
    EXPECT_EQ(lease.data(), first);
  }
  {
    // Concurrent leases on one thread get distinct buffers.
    exec::ScratchLease a(64);
    exec::ScratchLease b(64);
    EXPECT_NE(a.data(), b.data());
  }
}

TEST(ExecObs, ParallelRegionsAttributeUnderTheirTag) {
  ThreadCountGuard guard;
  exec::SetThreadCount(4);
  const bool previous = obs::SetTraceEnabled(true);
  obs::ResetProfiler();
  std::vector<int> hits(int64_t{1} << 16, 0);
  exec::ParallelFor(
      0, int64_t{1} << 16, 1,
      [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
      },
      "exec/test_region");

  bool scope_found = false;
  for (const auto& scope : obs::ScopeProfiles()) {
    if (scope.name == "exec/test_region") {
      scope_found = true;
      EXPECT_EQ(scope.calls, 1);
      EXPECT_GE(scope.total_us, 0.0);
    }
  }
  EXPECT_TRUE(scope_found);

  int exec_slices = 0;
  for (const auto& event : obs::TraceEvents()) {
    if (std::string(event.category) == "exec" &&
        event.name == "exec/test_region") {
      ++exec_slices;
    }
  }
  EXPECT_EQ(exec_slices, 4);  // one slice per chunk, none orphaned

  obs::ResetProfiler();
  obs::SetTraceEnabled(previous);
}

TEST(ExecObs, ScopeProfileAccumulatesBusyTimeAndSlices) {
  ThreadCountGuard guard;
  exec::SetThreadCount(4);
  const bool previous = obs::SetTraceEnabled(true);
  obs::ResetProfiler();
  volatile int64_t sink = 0;
  exec::ParallelFor(
      0, int64_t{1} << 16, 1,
      [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) sink = sink + i;
      },
      "exec/busy_region");

  bool found = false;
  for (const auto& scope : obs::ScopeProfiles()) {
    if (scope.name != "exec/busy_region") continue;
    found = true;
    EXPECT_EQ(scope.slices, 4);  // one timed slice per chunk
    EXPECT_GT(scope.busy_us, 0.0);
    // Busy time is summed across participants, so with 4 threads it can
    // exceed the wall time but never 4x it (plus timer slack).
    EXPECT_LE(scope.busy_us, scope.total_us * 4.0 + 1000.0);
  }
  EXPECT_TRUE(found);
  obs::ResetProfiler();
  obs::SetTraceEnabled(previous);
}

TEST(ExecPoolStats, CountsRegionsChunksAndBusyTime) {
  ThreadCountGuard guard;
  exec::SetThreadCount(4);
  const exec::PoolStats before = exec::GetPoolStats();
  std::vector<int> hits(int64_t{1} << 16, 0);
  exec::ParallelFor(0, int64_t{1} << 16, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
  });
  const exec::PoolStats after = exec::GetPoolStats();
  EXPECT_EQ(after.thread_count, 4);
  EXPECT_EQ(after.regions_launched, before.regions_launched + 1);
  EXPECT_EQ(after.chunks_executed, before.chunks_executed + 4);
  EXPECT_GT(after.total_busy_us(), before.total_busy_us());
  EXPECT_GE(after.workers_started, 3);  // caller takes one of the 4 lanes
  EXPECT_GE(after.max_queue_depth, 1);
  EXPECT_EQ(after.worker_busy_us.size(), after.worker_idle_us.size());
  EXPECT_EQ(static_cast<int>(after.worker_busy_us.size()),
            after.workers_started);
  for (double idle : after.worker_idle_us) EXPECT_GE(idle, 0.0);
}

TEST(ExecPoolStats, PublishFeedsMetricsGauges) {
  ThreadCountGuard guard;
  exec::SetThreadCount(2);
  exec::ParallelFor(0, int64_t{1} << 15, 1, [](int64_t, int64_t) {});
  exec::PublishPoolStats();
  auto& registry = obs::MetricsRegistry::Global();
  EXPECT_EQ(registry.GetGauge("exec/threads").Value(), 2.0);
  EXPECT_GE(registry.GetGauge("exec/regions_launched").Value(), 1.0);
  EXPECT_GE(registry.GetGauge("exec/chunks_executed").Value(), 2.0);
  EXPECT_GT(registry.GetGauge("exec/busy_us").Value(), 0.0);
  const double util = registry.GetGauge("exec/worker_utilization").Value();
  EXPECT_GE(util, 0.0);
  EXPECT_LE(util, 1.0);
}

// -- Bitwise determinism across thread counts ---------------------------------

std::vector<float> MatMulForwardAndGrads(int threads) {
  ThreadCountGuard guard;
  exec::SetThreadCount(threads);
  Rng rng(21);
  Tensor a = Tensor::Randn({48, 96}, rng, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({96, 64}, rng, 1.0f, /*requires_grad=*/true);
  Tensor loss = Sum(Square(MatMul(a, b)));
  loss.Backward();
  std::vector<float> result = {loss.Item()};
  result.insert(result.end(), a.Grad().begin(), a.Grad().end());
  result.insert(result.end(), b.Grad().begin(), b.Grad().end());
  return result;
}

std::vector<float> ConvForwardAndGrads(int threads) {
  ThreadCountGuard guard;
  exec::SetThreadCount(threads);
  Rng rng(22);
  Tensor input =
      Tensor::Randn({16, 3, 12, 12}, rng, 1.0f, /*requires_grad=*/true);
  Tensor weight =
      Tensor::Randn({5, 3, 3, 3}, rng, 1.0f, /*requires_grad=*/true);
  Tensor bias = Tensor::Randn({5}, rng, 1.0f, /*requires_grad=*/true);
  Tensor loss = Sum(Square(Conv2d(input, weight, bias, 1, 1)));
  loss.Backward();
  std::vector<float> result = {loss.Item()};
  result.insert(result.end(), input.Grad().begin(), input.Grad().end());
  result.insert(result.end(), weight.Grad().begin(), weight.Grad().end());
  result.insert(result.end(), bias.Grad().begin(), bias.Grad().end());
  return result;
}

TEST(ExecDeterminism, MatMulBitwiseIdenticalAtAnyThreadCount) {
  const auto serial = MatMulForwardAndGrads(1);
  EXPECT_EQ(serial, MatMulForwardAndGrads(4));
  EXPECT_EQ(serial, MatMulForwardAndGrads(8));
}

TEST(ExecDeterminism, ConvBitwiseIdenticalAtAnyThreadCount) {
  const auto serial = ConvForwardAndGrads(1);
  EXPECT_EQ(serial, ConvForwardAndGrads(4));
  EXPECT_EQ(serial, ConvForwardAndGrads(8));
}

struct TrainRun {
  std::vector<float> losses;
  std::vector<float> params;
};

// A short ST-HSL training loop (forward, SSL losses, backward, Adam) whose
// entire numeric trajectory must not depend on the kernel thread count.
TrainRun TrainSmallNet(int threads, const std::string& ckpt_path) {
  ThreadCountGuard guard;
  exec::SetThreadCount(threads);
  Rng rng(33);
  SthslConfig config;
  config.dim = 8;
  config.num_hyperedges = 8;
  SthslNet net(config, 4, 4, 4, 0.2f, 0.8f, rng);
  Adam optimizer(net.Parameters(), 0.005f);
  Rng data_rng(34);
  Tensor window = Tensor::Rand({16, 14, 4}, data_rng, 0.0f, 3.0f);
  Tensor target = Tensor::Rand({16, 4}, data_rng, 0.0f, 3.0f);

  TrainRun run;
  for (int step = 0; step < 6; ++step) {
    SthslNet::Output out = net.Forward(window, /*training=*/true);
    Tensor loss = MseLoss(out.prediction, target);
    loss = Add(loss, MulScalar(out.infomax_loss, 0.2f));
    loss = Add(loss, MulScalar(out.contrastive_loss, 0.1f));
    optimizer.ZeroGrad();
    loss.Backward();
    optimizer.Step();
    run.losses.push_back(loss.Item());
  }
  for (const auto& p : net.Parameters()) {
    run.params.insert(run.params.end(), p.Data().begin(), p.Data().end());
  }
  const Status status = SaveCheckpoint(net, ckpt_path);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return run;
}

TEST(ExecDeterminism, TrainingTrajectoryAndCheckpointBitwiseIdentical) {
  const std::string ckpt1 = ::testing::TempDir() + "/exec_det_t1.bin";
  const std::string ckpt4 = ::testing::TempDir() + "/exec_det_t4.bin";
  const TrainRun serial = TrainSmallNet(1, ckpt1);
  const TrainRun parallel = TrainSmallNet(4, ckpt4);

  ASSERT_EQ(serial.losses.size(), parallel.losses.size());
  for (size_t i = 0; i < serial.losses.size(); ++i) {
    EXPECT_EQ(serial.losses[i], parallel.losses[i]) << "step " << i;
  }
  ASSERT_EQ(serial.params.size(), parallel.params.size());
  EXPECT_EQ(serial.params, parallel.params);

  const std::string bytes1 = ReadFileBytes(ckpt1);
  const std::string bytes4 = ReadFileBytes(ckpt4);
  ASSERT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, bytes4);
  std::remove(ckpt1.c_str());
  std::remove(ckpt4.c_str());
}

// The SIMD dispatch / fusion refactor extends the contract: the training
// trajectory and checkpoint bytes must also be invariant to WHICH kernel
// variant runs (dispatched best vs portable reference) and to whether
// elementwise chains are fused — at any thread count.
TEST(ExecDeterminism, CheckpointBitwiseAcrossKernelSetFusionAndThreads) {
  struct Config {
    const char* tag;
    const simd::MicrokernelSet* kernels;  // nullptr = dispatched default
    int threads;
    int fusion;  // SetFusionEnabledForTesting mode (-1 = default policy)
  };
  const std::vector<Config> configs = {
      {"dispatched/t1/fused", nullptr, 1, -1},
      {"dispatched/t8/fused", nullptr, 8, -1},
      {"dispatched/t1/unfused", nullptr, 1, 0},
      {"portable/t1/fused", &simd::PortableKernels(), 1, -1},
      {"portable/t8/fused", &simd::PortableKernels(), 8, -1},
      {"portable/t8/unfused", &simd::PortableKernels(), 8, 0},
  };

  std::vector<float> baseline_losses;
  std::vector<float> baseline_params;
  std::string baseline_bytes;
  for (size_t i = 0; i < configs.size(); ++i) {
    const Config& config = configs[i];
    simd::SetKernelsForTesting(config.kernels);
    SetFusionEnabledForTesting(config.fusion);
    const std::string ckpt =
        ::testing::TempDir() + "/exec_det_matrix_" + std::to_string(i) +
        ".bin";
    const TrainRun run = TrainSmallNet(config.threads, ckpt);
    const std::string bytes = ReadFileBytes(ckpt);
    std::remove(ckpt.c_str());
    simd::SetKernelsForTesting(nullptr);
    SetFusionEnabledForTesting(-1);

    ASSERT_FALSE(bytes.empty()) << config.tag;
    if (i == 0) {
      baseline_losses = run.losses;
      baseline_params = run.params;
      baseline_bytes = bytes;
      continue;
    }
    EXPECT_EQ(run.losses, baseline_losses) << config.tag;
    EXPECT_EQ(run.params, baseline_params) << config.tag;
    EXPECT_EQ(bytes, baseline_bytes) << config.tag;
  }
}

}  // namespace
}  // namespace sthsl
