// Tests for the observability layer: metrics registry semantics, the per-op
// autograd profiler, scoped regions, trace export, and the guarantee that a
// disabled layer records no observable state.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/obs/export.h"
#include "util/obs/log_histogram.h"
#include "util/obs/metrics.h"
#include "util/obs/obs.h"
#include "util/rng.h"
#include "util/timer.h"

namespace sthsl {
namespace {

/// Saves the trace-enabled flag, clears all profiler and registry state, and
/// restores both on destruction so tests never leak state into each other
/// (or into the process-exit summary).
class ObsSandbox {
 public:
  explicit ObsSandbox(bool enabled) : previous_(obs::SetTraceEnabled(enabled)) {
    obs::ResetProfiler();
    obs::MetricsRegistry::Global().Reset();
  }
  ~ObsSandbox() {
    obs::ResetProfiler();
    obs::MetricsRegistry::Global().Reset();
    obs::SetTraceEnabled(previous_);
  }

  ObsSandbox(const ObsSandbox&) = delete;
  ObsSandbox& operator=(const ObsSandbox&) = delete;

 private:
  bool previous_;
};

const obs::OpProfile* FindOp(const std::vector<obs::OpProfile>& ops,
                             const std::string& name) {
  for (const auto& op : ops) {
    if (op.name == name) return &op;
  }
  return nullptr;
}

const obs::ScopeProfile* FindScope(const std::vector<obs::ScopeProfile>& scopes,
                                   const std::string& name) {
  for (const auto& scope : scopes) {
    if (scope.name == name) return &scope;
  }
  return nullptr;
}

TEST(MetricsTest, CounterAccumulates) {
  ObsSandbox sandbox(/*enabled=*/false);
  auto& registry = obs::MetricsRegistry::Global();
  auto& counter = registry.GetCounter("test/counter");
  EXPECT_EQ(counter.Value(), 0);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42);
  // Same name resolves to the same instrument.
  EXPECT_EQ(registry.GetCounter("test/counter").Value(), 42);
  EXPECT_EQ(registry.GetCounter("test/other").Value(), 0);
}

TEST(MetricsTest, GaugeKeepsLastValue) {
  ObsSandbox sandbox(/*enabled=*/false);
  auto& gauge = obs::MetricsRegistry::Global().GetGauge("test/gauge");
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(3.5);
  gauge.Set(-1.25);
  EXPECT_EQ(gauge.Value(), -1.25);
}

TEST(MetricsTest, HistogramNearestRankPercentiles) {
  ObsSandbox sandbox(/*enabled=*/false);
  auto& hist = obs::MetricsRegistry::Global().GetHistogram("test/hist");
  EXPECT_EQ(hist.GetSnapshot().count, 0);
  // Record 100..1 (descending, so ordering is the snapshot's job).
  for (int i = 100; i >= 1; --i) hist.Record(static_cast<double>(i));
  const obs::Histogram::Snapshot s = hist.GetSnapshot();
  EXPECT_EQ(s.count, 100);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(s.p50, 50.0);  // nearest-rank: ceil(0.50 * 100) = rank 50
  EXPECT_EQ(s.p95, 95.0);
  EXPECT_EQ(s.p99, 99.0);
}

TEST(MetricsTest, HistogramSingleSample) {
  ObsSandbox sandbox(/*enabled=*/false);
  auto& hist = obs::MetricsRegistry::Global().GetHistogram("test/one");
  hist.Record(7.0);
  const obs::Histogram::Snapshot s = hist.GetSnapshot();
  EXPECT_EQ(s.count, 1);
  EXPECT_EQ(s.min, 7.0);
  EXPECT_EQ(s.max, 7.0);
  EXPECT_EQ(s.p50, 7.0);
  EXPECT_EQ(s.p95, 7.0);
  EXPECT_EQ(s.p99, 7.0);
}

// ---------------------------------------------------------------------------
// LogHistogram: bounded log-linear histogram for serving hot paths.

TEST(LogHistogramTest, QuantileErrorStaysWithinBucketBound) {
  ObsSandbox sandbox(/*enabled=*/false);
  obs::LogHistogram hist;
  // Values 1..10000: exact quantiles are known, the histogram's estimate
  // must be within its documented relative error of 1/(2*16) = 3.125%.
  for (int i = 1; i <= 10000; ++i) hist.Record(static_cast<double>(i));
  const obs::Histogram::Snapshot s = hist.GetSnapshot();
  EXPECT_EQ(s.count, 10000);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 10000.0);
  EXPECT_NEAR(s.mean, 5000.5, 1e-6);  // sum is exact, not bucketed
  const double kRelError = 1.0 / 32.0;
  EXPECT_NEAR(s.p50, 5000.0, 5000.0 * kRelError);
  EXPECT_NEAR(s.p95, 9500.0, 9500.0 * kRelError);
  EXPECT_NEAR(s.p99, 9900.0, 9900.0 * kRelError);
}

TEST(LogHistogramTest, SubUnitAndExtremeValuesClampToEdgeBuckets) {
  obs::LogHistogram hist;
  hist.Record(0.0);
  hist.Record(0.5);
  hist.Record(-3.0);  // negative: clamps into the [0,1) bucket
  hist.Record(1e300);
  const obs::Histogram::Snapshot s = hist.GetSnapshot();
  EXPECT_EQ(s.count, 4);
  EXPECT_EQ(s.min, -3.0);
  EXPECT_EQ(s.max, 1e300);
  // Quantile estimates stay inside the observed range even for clamped
  // values far outside the bucketed octaves.
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p99, s.max);
}

TEST(LogHistogramTest, MergeMatchesRecordingEverythingInOne) {
  obs::LogHistogram left;
  obs::LogHistogram right;
  obs::LogHistogram all;
  for (int i = 1; i <= 500; ++i) {
    const double value = static_cast<double>(i * 7 % 997);
    (i % 2 == 0 ? left : right).Record(value);
    all.Record(value);
  }
  obs::LogHistogram merged;
  merged.MergeFrom(left);
  merged.MergeFrom(right);
  const obs::Histogram::Snapshot a = merged.GetSnapshot();
  const obs::Histogram::Snapshot b = all.GetSnapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_EQ(a.p50, b.p50);  // identical buckets → identical quantiles
  EXPECT_EQ(a.p95, b.p95);
  EXPECT_EQ(a.p99, b.p99);

  // Merge is associative: (left ⊕ right) ⊕ left == left ⊕ (right ⊕ left).
  obs::LogHistogram lr;
  lr.MergeFrom(left);
  lr.MergeFrom(right);
  lr.MergeFrom(left);
  obs::LogHistogram rl;
  rl.MergeFrom(right);
  rl.MergeFrom(left);
  obs::LogHistogram assoc;
  assoc.MergeFrom(left);
  assoc.MergeFrom(rl);
  for (int i = 0; i < obs::LogHistogram::kNumBuckets; ++i) {
    ASSERT_EQ(lr.bucket_count(i), assoc.bucket_count(i)) << "bucket " << i;
  }
}

TEST(LogHistogramTest, BucketIndexIsMonotoneAndBounded) {
  int previous = -1;
  for (double value = 0.25; value < 1e9; value *= 1.37) {
    const int index = obs::LogHistogram::BucketIndex(value);
    ASSERT_GE(index, 0);
    ASSERT_LT(index, obs::LogHistogram::kNumBuckets);
    ASSERT_GE(index, previous) << "value " << value;
    // The bucket's lower bound never exceeds the value it holds.
    ASSERT_LE(obs::LogHistogram::BucketLowerBound(index), value);
    previous = index;
  }
}

TEST(LogHistogramTest, RegistryExposesLogHistogramsAlongsideExact) {
  ObsSandbox sandbox(/*enabled=*/false);
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetHistogram("test/exact").Record(5.0);
  registry.GetLogHistogram("test/bounded").Record(5.0);
  const auto histograms = registry.Histograms();
  ASSERT_EQ(histograms.size(), 2u);
  EXPECT_EQ(histograms[0].first, "test/bounded");  // name-sorted
  EXPECT_EQ(histograms[1].first, "test/exact");
  EXPECT_EQ(histograms[0].second.count, 1);
  EXPECT_EQ(histograms[1].second.count, 1);
  // Same instrument on repeat lookup.
  registry.GetLogHistogram("test/bounded").Record(6.0);
  EXPECT_EQ(registry.GetLogHistogram("test/bounded").GetSnapshot().count, 2);
}

TEST(MetricsTest, RegistrySnapshotsAreNameSorted) {
  ObsSandbox sandbox(/*enabled=*/false);
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("zeta").Add(1);
  registry.GetCounter("alpha").Add(2);
  const auto counters = registry.Counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "alpha");
  EXPECT_EQ(counters[1].first, "zeta");
}

TEST(ObsProfilerTest, ForwardAndBackwardOpsRecorded) {
  ObsSandbox sandbox(/*enabled=*/true);
  Rng rng(11);
  Tensor a = Tensor::Rand({8, 8}, rng, -1.0f, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Rand({8, 8}, rng, -1.0f, 1.0f, /*requires_grad=*/true);
  Tensor loss = Sum(MatMul(a, b));
  loss.Backward();

  const auto ops = obs::OpProfiles();
  const obs::OpProfile* matmul = FindOp(ops, "matmul");
  ASSERT_NE(matmul, nullptr);
  EXPECT_EQ(matmul->forward_calls, 1);
  EXPECT_EQ(matmul->backward_calls, 1);
  EXPECT_GE(matmul->forward_us, 0.0);
  EXPECT_GE(matmul->backward_us, 0.0);
  // Output 8x8 plus two 8x8 inputs, 4 bytes each.
  EXPECT_EQ(matmul->bytes_touched, 3 * 8 * 8 * 4);
  // Ops spawned inside backward functions must not inflate forward counts:
  // one forward call of sum, regardless of what its backward ran.
  const obs::OpProfile* sum = FindOp(ops, "sum_all");
  ASSERT_NE(sum, nullptr);
  EXPECT_EQ(sum->forward_calls, 1);
}

TEST(ObsProfilerTest, ScopesNestAndAggregate) {
  ObsSandbox sandbox(/*enabled=*/true);
  {
    STHSL_TRACE_SCOPE("outer");
    {
      STHSL_TRACE_SCOPE("inner");
      volatile double sink = 0.0;
      for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
    }
  }
  {
    STHSL_TRACE_SCOPE("outer");
  }

  const auto scopes = obs::ScopeProfiles();
  const obs::ScopeProfile* outer = FindScope(scopes, "outer");
  const obs::ScopeProfile* inner = FindScope(scopes, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->calls, 2);
  EXPECT_EQ(inner->calls, 1);
  EXPECT_GE(outer->total_us, inner->total_us);

  // The inner scope closes first, so its event is appended first, and its
  // interval nests inside the first outer event's interval.
  const auto events = obs::TraceEvents();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_GE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us + 1.0);
}

TEST(ObsProfilerTest, TensorMemoryPeakTracksLargestWorkingSet) {
  ObsSandbox sandbox(/*enabled=*/true);
  EXPECT_EQ(obs::PeakTensorBytes(), 0);
  {
    Tensor big = Tensor::Zeros({1000});
    EXPECT_GE(obs::LiveTensorBytes(), 4000);
    EXPECT_GE(obs::PeakTensorBytes(), 4000);
  }
  // The big tensor died; live drops, peak stays.
  EXPECT_LT(obs::LiveTensorBytes(), 4000);
  EXPECT_GE(obs::PeakTensorBytes(), 4000);
}

TEST(ObsProfilerTest, DisabledModeRecordsNothing) {
  ObsSandbox sandbox(/*enabled=*/false);
  {
    STHSL_TRACE_SCOPE("should_not_appear");
    Rng rng(13);
    Tensor a = Tensor::Rand({4, 4}, rng, -1.0f, 1.0f, /*requires_grad=*/true);
    Tensor loss = Sum(Mul(a, a));
    loss.Backward();
  }
  EXPECT_TRUE(obs::OpProfiles().empty());
  EXPECT_TRUE(obs::ScopeProfiles().empty());
  EXPECT_TRUE(obs::TraceEvents().empty());
  EXPECT_EQ(obs::PeakTensorBytes(), 0);
  EXPECT_EQ(obs::DroppedTraceEvents(), 0);
}

TEST(ObsProfilerTest, EnabledTimingIsSane) {
  ObsSandbox sandbox(/*enabled=*/true);
  Timer wall;
  Rng rng(17);
  Tensor a = Tensor::Rand({32, 32}, rng, -1.0f, 1.0f, /*requires_grad=*/true);
  Tensor x = a;
  for (int i = 0; i < 4; ++i) x = MatMul(x, a);
  Sum(x).Backward();
  const double wall_us = wall.ElapsedMicros();

  double forward_us = 0.0;
  int64_t forward_calls = 0;
  for (const auto& op : obs::OpProfiles()) {
    forward_us += op.forward_us;
    forward_calls += op.forward_calls;
  }
  EXPECT_EQ(forward_calls, 5);  // 4 matmuls + 1 sum
  EXPECT_GT(forward_us, 0.0);
  // Self-time attribution can never exceed the wall clock around the region
  // (small slack for clock granularity).
  EXPECT_LE(forward_us, wall_us * 1.05 + 100.0);
}

TEST(ObsExportTest, ChromeTraceFileIsValidAndLoadable) {
  ObsSandbox sandbox(/*enabled=*/true);
  {
    STHSL_TRACE_SCOPE("export_phase");
    Rng rng(19);
    Tensor a = Tensor::Rand({4, 4}, rng);
    Tensor b = MatMul(a, a);
    (void)b;
  }
  const std::string path = "/tmp/sthsl_obs_trace_test.json";
  ASSERT_TRUE(obs::WriteChromeTrace(path).ok());

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  std::remove(path.c_str());

  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"export_phase\""), std::string::npos);
  EXPECT_NE(text.find("\"matmul\""), std::string::npos);
  // Structural sanity: braces and brackets balance, so any strict JSON
  // parser (chrome://tracing's included) can load the file.
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ObsExportTest, MetricsJsonHasAllSections) {
  ObsSandbox sandbox(/*enabled=*/true);
  obs::MetricsRegistry::Global().GetCounter("test/count").Add(3);
  obs::MetricsRegistry::Global().GetHistogram("test/hist").Record(1.5);
  Rng rng(23);
  Tensor a = Tensor::Rand({2, 2}, rng);
  (void)MatMul(a, a);

  const std::string json = obs::MetricsJson();
  EXPECT_NE(json.find("\"counters\":{\"test/count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{\"test/hist\":{\"count\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"ops\":["), std::string::npos);
  EXPECT_NE(json.find("\"matmul\""), std::string::npos);
  EXPECT_NE(json.find("\"tensor_memory\""), std::string::npos);
}

TEST(ObsExportTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(obs::JsonEscape("plain"), "plain");
  EXPECT_EQ(obs::JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(obs::JsonEscape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace sthsl
