// Tests for the machine-peak calibrator: measurement sanity with a tiny
// budget, the cache round-trip through STHSL_CACHE_DIR, and cache
// invalidation when the cached CPU model does not match this host.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "util/obs/calibrate.h"

namespace sthsl {
namespace {

/// Points STHSL_CACHE_DIR at a fresh per-test directory and restores the
/// prior value on destruction.
class CacheDirGuard {
 public:
  explicit CacheDirGuard(const std::string& dir) {
    const char* prev = std::getenv("STHSL_CACHE_DIR");
    had_previous_ = prev != nullptr;
    if (had_previous_) previous_ = prev;
    setenv("STHSL_CACHE_DIR", dir.c_str(), 1);
  }
  ~CacheDirGuard() {
    if (had_previous_) {
      setenv("STHSL_CACHE_DIR", previous_.c_str(), 1);
    } else {
      unsetenv("STHSL_CACHE_DIR");
    }
  }

  CacheDirGuard(const CacheDirGuard&) = delete;
  CacheDirGuard& operator=(const CacheDirGuard&) = delete;

 private:
  bool had_previous_ = false;
  std::string previous_;
};

std::string TestCacheDir(const char* label) {
  const testing::TestInfo* info =
      testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = testing::TempDir() + "sthsl_calibrate_";
  dir += info != nullptr ? info->name() : label;
  return dir;
}

TEST(CalibrateTest, MeasureReturnsPositivePeaksWithProvenance) {
  // A ~40 ms budget is enough for a nonzero reading on any machine; the
  // figures only need to be positive, not accurate.
  const obs::MachinePeaks peaks = obs::MeasureMachinePeaks(0.04);
  EXPECT_TRUE(peaks.valid());
  EXPECT_GT(peaks.gflops_1t, 0.0);
  EXPECT_GT(peaks.gbps_1t, 0.0);
  EXPECT_GE(peaks.hardware_threads, 1);
  EXPECT_FALSE(peaks.cpu_model.empty());
  EXPECT_FALSE(peaks.created_utc.empty());
  EXPECT_FALSE(peaks.from_cache);
}

TEST(CalibrateTest, CachePathHonorsEnvOverride) {
  CacheDirGuard guard("/some/dir");
  EXPECT_EQ(obs::PeaksCachePath(), "/some/dir/machine_peaks.json");
}

TEST(CalibrateTest, SaveLoadRoundTrip) {
  CacheDirGuard guard(TestCacheDir("round_trip"));
  const std::string path = obs::PeaksCachePath();
  std::remove(path.c_str());

  obs::MachinePeaks peaks;
  peaks.gflops_1t = 12.5;
  peaks.gbps_1t = 7.25;
  peaks.hardware_threads = 8;
  peaks.cpu_model = "Test CPU @ 3.0GHz";
  peaks.created_utc = "2026-08-08T00:00:00Z";
  ASSERT_TRUE(obs::SaveMachinePeaks(path, peaks));

  obs::MachinePeaks loaded;
  ASSERT_TRUE(obs::LoadCachedPeaks(path, &loaded));
  EXPECT_TRUE(loaded.from_cache);
  EXPECT_DOUBLE_EQ(loaded.gflops_1t, 12.5);
  EXPECT_DOUBLE_EQ(loaded.gbps_1t, 7.25);
  EXPECT_EQ(loaded.hardware_threads, 8);
  EXPECT_EQ(loaded.cpu_model, "Test CPU @ 3.0GHz");
  EXPECT_EQ(loaded.created_utc, "2026-08-08T00:00:00Z");
}

TEST(CalibrateTest, LoadRejectsMissingMalformedAndIncomplete) {
  CacheDirGuard guard(TestCacheDir("load_rejects"));
  const std::string path = obs::PeaksCachePath();
  std::remove(path.c_str());
  obs::MachinePeaks out;
  EXPECT_FALSE(obs::LoadCachedPeaks(path, &out));

  obs::MachinePeaks seed;
  seed.gflops_1t = 1.0;
  seed.gbps_1t = 1.0;
  seed.cpu_model = "x";
  ASSERT_TRUE(obs::SaveMachinePeaks(path, seed));  // creates the directory

  std::ofstream(path, std::ios::trunc) << "not json";
  EXPECT_FALSE(obs::LoadCachedPeaks(path, &out));
  std::ofstream(path, std::ios::trunc) << "{\"gflops_1t\":2.0}";
  EXPECT_FALSE(obs::LoadCachedPeaks(path, &out));
  // Non-positive peaks are incomplete measurements, not usable cache hits.
  std::ofstream(path, std::ios::trunc)
      << "{\"gflops_1t\":0,\"gbps_1t\":1.0,\"cpu_model\":\"x\"}";
  EXPECT_FALSE(obs::LoadCachedPeaks(path, &out));
}

TEST(CalibrateTest, CalibrateUsesCacheAndInvalidatesOnCpuMismatch) {
  CacheDirGuard guard(TestCacheDir("cache_through"));
  const std::string path = obs::PeaksCachePath();
  std::remove(path.c_str());

  // Seed the cache with this host's CPU model: the calibrator must take the
  // cached values instead of burning measurement time.
  obs::MachinePeaks seeded;
  seeded.gflops_1t = 123.0;
  seeded.gbps_1t = 45.0;
  seeded.hardware_threads = 2;
  seeded.cpu_model = obs::CpuModelName();
  seeded.created_utc = "2026-08-08T00:00:00Z";
  ASSERT_TRUE(obs::SaveMachinePeaks(path, seeded));

  const obs::MachinePeaks cached = obs::CalibrateMachinePeaks(false, 0.02);
  EXPECT_TRUE(cached.from_cache);
  EXPECT_DOUBLE_EQ(cached.gflops_1t, 123.0);

  // A cache measured on a different CPU must be ignored and rewritten.
  seeded.cpu_model = "Some Other CPU";
  ASSERT_TRUE(obs::SaveMachinePeaks(path, seeded));
  const obs::MachinePeaks remeasured = obs::CalibrateMachinePeaks(false, 0.02);
  EXPECT_FALSE(remeasured.from_cache);
  EXPECT_TRUE(remeasured.valid());
  EXPECT_EQ(remeasured.cpu_model, obs::CpuModelName());

  // force_remeasure skips the cache read even when the model matches.
  const obs::MachinePeaks forced = obs::CalibrateMachinePeaks(true, 0.02);
  EXPECT_FALSE(forced.from_cache);
}

}  // namespace
}  // namespace sthsl
