// Tests for the runtime-dispatched SIMD microkernel layer (src/simd) and the
// eager elementwise-chain fusion built on top of it (tensor/fusion.h):
//
//  - dispatch: portable always present, unknown names rejected, the selected
//    set matches the detected CPU, the test override works;
//  - parity: every compiled variant reproduces the portable reference
//    BITWISE on every kernel, across non-multiple-of-vector-width tails
//    (1, 3, 7, 17, 63) — the executable form of the simd.h contract;
//  - GEMM: the blocked driver matches a plain ascending-fma reference
//    bitwise, including K larger than the cache block;
//  - fusion: chains collapse to one autograd node, forward/backward are
//    bitwise identical to the unfused graph, gradcheck passes, broadcasts
//    fall back to eager, intermediate allocations disappear;
//  - thread invariance: vectorized and fused paths are bitwise stable
//    across thread counts.

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/exec.h"
#include "simd/simd.h"
#include "tensor/fusion.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/obs/obs.h"
#include "util/rng.h"

namespace sthsl {
namespace {

// The issue's mandated tail sweep plus vector-width multiples.
const std::vector<int64_t>& TailSizes() {
  static const std::vector<int64_t> sizes = {1, 3, 7, 8, 16, 17, 63, 64, 200};
  return sizes;
}

std::vector<const simd::MicrokernelSet*> CompiledVariants() {
  std::vector<const simd::MicrokernelSet*> out;
  out.push_back(&simd::PortableKernels());
  for (const char* name : {"avx2", "neon"}) {
    if (const auto* ks = simd::KernelsByName(name)) out.push_back(ks);
  }
  return out;
}

std::vector<float> RandomValues(int64_t n, uint64_t seed, float lo = -2.0f,
                                float hi = 2.0f) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.Uniform(lo, hi));
  // Exercise the sign-sensitive select paths.
  if (n > 0) v[0] = 0.0f;
  if (n > 1) v[1] = -0.0f;
  return v;
}

// Bitwise comparison: catches -0.0f vs +0.0f, which operator== cannot.
void ExpectBitwiseEq(const std::vector<float>& a, const std::vector<float>& b,
                     const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
        << what;
  }
}

void ExpectBitwiseEq(float a, float b, const std::string& what) {
  EXPECT_EQ(std::bit_cast<uint32_t>(a), std::bit_cast<uint32_t>(b)) << what;
}

class ThreadCountGuard {
 public:
  ThreadCountGuard() : previous_(exec::ThreadCount()) {}
  ~ThreadCountGuard() { exec::SetThreadCount(previous_); }

 private:
  int previous_;
};

// Restores the default kernel set and fusion mode on scope exit.
class SimdOverrideGuard {
 public:
  ~SimdOverrideGuard() {
    simd::SetKernelsForTesting(nullptr);
    SetFusionEnabledForTesting(-1);
  }
};

// ---------------------------------------------------------------- dispatch --

TEST(SimdDispatch, PortableAlwaysAvailable) {
  const auto* portable = simd::KernelsByName("portable");
  ASSERT_NE(portable, nullptr);
  EXPECT_STREQ(portable->name, "portable");
  EXPECT_EQ(portable, &simd::PortableKernels());
}

TEST(SimdDispatch, UnknownVariantIsNull) {
  EXPECT_EQ(simd::KernelsByName("sse9"), nullptr);
  EXPECT_EQ(simd::KernelsByName(""), nullptr);
}

TEST(SimdDispatch, SelectedSetMatchesCpuFeatures) {
  if (std::getenv("STHSL_SIMD") != nullptr) {
    GTEST_SKIP() << "STHSL_SIMD override active";
  }
  const simd::CpuFeatures feats = simd::DetectCpuFeatures();
  const char* selected = simd::Kernels().name;
  if (feats.avx2 && feats.fma && simd::KernelsByName("avx2") != nullptr) {
    EXPECT_STREQ(selected, "avx2");
  } else if (feats.neon && simd::KernelsByName("neon") != nullptr) {
    EXPECT_STREQ(selected, "neon");
  } else {
    EXPECT_STREQ(selected, "portable");
  }
}

TEST(SimdDispatch, FeatureStringNonEmpty) {
  const std::string feats = simd::CpuFeatureString();
  EXPECT_FALSE(feats.empty());
}

TEST(SimdDispatch, TestOverrideSwapsTheActiveSet) {
  SimdOverrideGuard guard;
  simd::SetKernelsForTesting(&simd::PortableKernels());
  EXPECT_STREQ(simd::Kernels().name, "portable");
  simd::SetKernelsForTesting(nullptr);
  EXPECT_NE(simd::Kernels().name, nullptr);
}

// ------------------------------------------------------------ kernel parity --

TEST(SimdParity, ElementwiseBitwiseAcrossVariantsAndTails) {
  const auto& ref = simd::PortableKernels();
  for (const auto* ks : CompiledVariants()) {
    for (int64_t n : TailSizes()) {
      const std::vector<float> x = RandomValues(n, 100 + n);
      const std::vector<float> y =
          RandomValues(n, 200 + n, 0.5f, 2.0f);  // away from 0 for div
      const std::string tag =
          std::string(ks->name) + " n=" + std::to_string(n);

      std::vector<float> got(x.size());
      std::vector<float> want(x.size());
      ref.add(n, x.data(), y.data(), want.data());
      ks->add(n, x.data(), y.data(), got.data());
      ExpectBitwiseEq(got, want, "add " + tag);
      ref.sub(n, x.data(), y.data(), want.data());
      ks->sub(n, x.data(), y.data(), got.data());
      ExpectBitwiseEq(got, want, "sub " + tag);
      ref.mul(n, x.data(), y.data(), want.data());
      ks->mul(n, x.data(), y.data(), got.data());
      ExpectBitwiseEq(got, want, "mul " + tag);
      ref.div(n, x.data(), y.data(), want.data());
      ks->div(n, x.data(), y.data(), got.data());
      ExpectBitwiseEq(got, want, "div " + tag);

      ref.add_scalar(n, x.data(), 0.37f, want.data());
      ks->add_scalar(n, x.data(), 0.37f, got.data());
      ExpectBitwiseEq(got, want, "add_scalar " + tag);
      ref.mul_scalar(n, x.data(), -1.71f, want.data());
      ks->mul_scalar(n, x.data(), -1.71f, got.data());
      ExpectBitwiseEq(got, want, "mul_scalar " + tag);
      ref.div_scalar(n, x.data(), 3.0f, want.data());
      ks->div_scalar(n, x.data(), 3.0f, got.data());
      ExpectBitwiseEq(got, want, "div_scalar " + tag);

      ref.relu(n, x.data(), want.data());
      ks->relu(n, x.data(), got.data());
      ExpectBitwiseEq(got, want, "relu " + tag);
      ref.leaky_relu(n, x.data(), 0.01f, want.data());
      ks->leaky_relu(n, x.data(), 0.01f, got.data());
      ExpectBitwiseEq(got, want, "leaky_relu " + tag);
      ref.clamp_min(n, x.data(), 0.25f, want.data());
      ks->clamp_min(n, x.data(), 0.25f, got.data());
      ExpectBitwiseEq(got, want, "clamp_min " + tag);

      // Aliased in-place form (out == x) must match the out-of-place result.
      std::vector<float> inplace = x;
      ks->add(n, inplace.data(), y.data(), inplace.data());
      ref.add(n, x.data(), y.data(), want.data());
      ExpectBitwiseEq(inplace, want, "add aliased " + tag);
    }
  }
}

TEST(SimdParity, ReductionsBitwiseAcrossVariantsAndTails) {
  const auto& ref = simd::PortableKernels();
  for (const auto* ks : CompiledVariants()) {
    for (int64_t n : TailSizes()) {
      const std::vector<float> x = RandomValues(n, 300 + n);
      const std::vector<float> y = RandomValues(n, 400 + n);
      const std::string tag =
          std::string(ks->name) + " n=" + std::to_string(n);
      ExpectBitwiseEq(ks->dot(n, x.data(), y.data()),
                      ref.dot(n, x.data(), y.data()), "dot " + tag);
      ExpectBitwiseEq(ks->reduce_sum(n, x.data()),
                      ref.reduce_sum(n, x.data()), "reduce_sum " + tag);
      ExpectBitwiseEq(ks->reduce_max(n, x.data()),
                      ref.reduce_max(n, x.data()), "reduce_max " + tag);
    }
  }
}

TEST(SimdParity, AxpyAndOptimizerStepsBitwiseAcrossVariantsAndTails) {
  const auto& ref = simd::PortableKernels();
  for (const auto* ks : CompiledVariants()) {
    for (int64_t n : TailSizes()) {
      const std::vector<float> g = RandomValues(n, 500 + n);
      const std::vector<float> x0 = RandomValues(n, 600 + n);
      const std::string tag =
          std::string(ks->name) + " n=" + std::to_string(n);

      std::vector<float> ya = x0;
      std::vector<float> yb = x0;
      ks->axpy(n, 1.3f, g.data(), ya.data());
      ref.axpy(n, 1.3f, g.data(), yb.data());
      ExpectBitwiseEq(ya, yb, "axpy " + tag);

      std::vector<float> xa = x0;
      std::vector<float> xb = x0;
      ks->sgd_step(n, xa.data(), g.data(), 0.01f, 0.001f);
      ref.sgd_step(n, xb.data(), g.data(), 0.01f, 0.001f);
      ExpectBitwiseEq(xa, xb, "sgd_step " + tag);

      xa = x0;
      xb = x0;
      std::vector<float> va = RandomValues(n, 700 + n);
      std::vector<float> vb = va;
      ks->sgd_momentum_step(n, xa.data(), va.data(), g.data(), 0.01f, 0.9f,
                            0.001f);
      ref.sgd_momentum_step(n, xb.data(), vb.data(), g.data(), 0.01f, 0.9f,
                            0.001f);
      ExpectBitwiseEq(xa, xb, "sgd_momentum x " + tag);
      ExpectBitwiseEq(va, vb, "sgd_momentum v " + tag);

      xa = x0;
      xb = x0;
      std::vector<float> ma = RandomValues(n, 800 + n, -0.1f, 0.1f);
      std::vector<float> mb = ma;
      va = RandomValues(n, 900 + n, 0.0f, 0.1f);
      vb = va;
      ks->adam_step(n, xa.data(), ma.data(), va.data(), g.data(), 0.005f,
                    0.9f, 0.999f, 1e-8f, 0.001f, 0.271f, 0.0297f);
      ref.adam_step(n, xb.data(), mb.data(), vb.data(), g.data(), 0.005f,
                    0.9f, 0.999f, 1e-8f, 0.001f, 0.271f, 0.0297f);
      ExpectBitwiseEq(xa, xb, "adam x " + tag);
      ExpectBitwiseEq(ma, mb, "adam m " + tag);
      ExpectBitwiseEq(va, vb, "adam v " + tag);
    }
  }
}

TEST(SimdParity, GemmTileBitwiseAcrossVariantsAndEdges) {
  const auto& ref = simd::PortableKernels();
  for (const auto* ks : CompiledVariants()) {
    for (int64_t mr = 1; mr <= simd::kGemmTileRows; ++mr) {
      for (int64_t nr : {int64_t{1}, int64_t{3}, int64_t{7}, int64_t{15},
                         simd::kGemmTileCols}) {
        for (int64_t kc : {int64_t{1}, int64_t{5}, int64_t{17}}) {
          const std::vector<float> a =
              RandomValues(mr * kc, 1000 + mr * 31 + nr * 7 + kc);
          std::vector<float> b = RandomValues(kc * simd::kGemmTileCols,
                                              2000 + mr + nr * 13 + kc);
          const int64_t ldc = nr + 3;  // exercise a strided C
          const std::vector<float> c0 =
              RandomValues(mr * ldc, 3000 + mr + nr + kc);
          std::vector<float> got = c0;
          std::vector<float> want = c0;
          ks->gemm_tile(a.data(), b.data(), got.data(), ldc, mr, nr, kc);
          ref.gemm_tile(a.data(), b.data(), want.data(), ldc, mr, nr, kc);
          ExpectBitwiseEq(got, want,
                          std::string("gemm_tile ") + ks->name + " mr=" +
                              std::to_string(mr) + " nr=" +
                              std::to_string(nr) + " kc=" +
                              std::to_string(kc));
        }
      }
    }
  }
}

// ------------------------------------------------------------ blocked GEMM --

// The blocked driver must equal the plain ascending-fma reference bitwise:
// per output element, c_ij = fma(a_ip, b_pj, c_ij) for p ascending from 0.
TEST(GemmBitwise, MatMulMatchesAscendingFmaReference) {
  for (const auto& dims : std::vector<std::vector<int64_t>>{
           {5, 17, 7}, {48, 64, 33}, {3, 300, 19}}) {  // k=300 spans K blocks
    const int64_t m = dims[0];
    const int64_t k = dims[1];
    const int64_t n = dims[2];
    Rng rng(static_cast<uint64_t>(m * 10007 + k * 101 + n));
    Tensor a = Tensor::Rand({m, k}, rng, -1.0f, 1.0f);
    Tensor b = Tensor::Rand({k, n}, rng, -1.0f, 1.0f);
    Tensor c = MatMul(a, b);
    const auto& av = a.Data();
    const auto& bv = b.Data();
    const auto& cv = c.Data();
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) {
          acc = std::fma(av[static_cast<size_t>(i * k + p)],
                         bv[static_cast<size_t>(p * n + j)], acc);
        }
        ASSERT_EQ(std::bit_cast<uint32_t>(cv[static_cast<size_t>(i * n + j)]),
                  std::bit_cast<uint32_t>(acc))
            << "m=" << m << " k=" << k << " n=" << n << " at (" << i << ","
            << j << ")";
      }
    }
  }
}

// Forward + backward of a MatMul-based objective (exercising the NN, NT and
// TN paths) must not change when the dispatched variant is swapped for the
// portable reference.
TEST(GemmBitwise, ForwardAndGradsIdenticalAcrossKernelSets) {
  SimdOverrideGuard guard;
  const auto run = [](const simd::MicrokernelSet* kernels) {
    simd::SetKernelsForTesting(kernels);
    Rng rng(77);
    Tensor a = Tensor::Randn({21, 37}, rng, 1.0f, /*requires_grad=*/true);
    Tensor b = Tensor::Randn({37, 13}, rng, 1.0f, /*requires_grad=*/true);
    Tensor loss = Sum(Square(MatMul(a, b)));
    loss.Backward();
    std::vector<float> out = {loss.Item()};
    out.insert(out.end(), a.Grad().begin(), a.Grad().end());
    out.insert(out.end(), b.Grad().begin(), b.Grad().end());
    return out;
  };
  const auto portable = run(&simd::PortableKernels());
  const auto dispatched = run(nullptr);
  ExpectBitwiseEq(portable, dispatched, "matmul fwd+bwd across kernel sets");
}

// ---------------------------------------------------------------- fusion --

TEST(Fusion, ChainCollapsesToOneAutogradNode) {
  SimdOverrideGuard guard;
  SetFusionEnabledForTesting(1);
  Rng rng(11);
  // The prefix of the chain is grad-free, so it stays lazy and keeps
  // extending; the grad-carrying rhs arrives in the last step, giving one
  // fused node covering all three steps.
  Tensor a = Tensor::Randn({4, 8}, rng, 1.0f);
  Tensor b = Tensor::Randn({4, 8}, rng, 1.0f, /*requires_grad=*/true);
  Tensor z = Mul(Relu(AddScalar(a, 0.5f)), b);
  ASSERT_NE(z.GradFn(), nullptr);
  EXPECT_EQ(z.GradFn()->op_name, "fused_elemwise3");
  // Inputs are [root, rhs...]: a and b; the AddScalar/Relu prefix tensors
  // never become inputs (and are never materialized).
  EXPECT_EQ(z.GradFn()->inputs.size(), 2u);
}

TEST(Fusion, ChainSplitsAtGradGraphBoundaries) {
  SimdOverrideGuard guard;
  SetFusionEnabledForTesting(1);
  Rng rng(11);
  Tensor a = Tensor::Randn({4, 8}, rng, 1.0f, /*requires_grad=*/true);
  // Every intermediate carries grad, so extending through it would change
  // how consumer gradients associate; each op must get its own node.
  Tensor z = Relu(AddScalar(Square(a), 0.5f));
  ASSERT_NE(z.GradFn(), nullptr);
  EXPECT_EQ(z.GradFn()->op_name, "fused_elemwise1");
  ASSERT_EQ(z.GradFn()->inputs.size(), 1u);
  const auto& mid = z.GradFn()->inputs[0];
  ASSERT_NE(mid.GradFn(), nullptr);
  EXPECT_EQ(mid.GradFn()->op_name, "fused_elemwise1");
  // Under NoGradGuard the same expression collapses back into one chain.
  {
    NoGradGuard no_grad;
    Tensor w = Relu(AddScalar(Square(a), 0.5f));
    EXPECT_EQ(w.GradFn(), nullptr);
  }
}

TEST(Fusion, BroadcastBinaryFallsBackToEager) {
  SimdOverrideGuard guard;
  SetFusionEnabledForTesting(1);
  Rng rng(12);
  Tensor a = Tensor::Randn({4, 8}, rng, 1.0f, /*requires_grad=*/true);
  Tensor row = Tensor::Randn({1, 8}, rng, 1.0f);
  Tensor z = Add(a, row);
  ASSERT_NE(z.GradFn(), nullptr);
  EXPECT_EQ(z.GradFn()->op_name, "add");
}

std::vector<float> ChainForwardAndGrads(int fusion_mode, int threads) {
  ThreadCountGuard thread_guard;
  exec::SetThreadCount(threads);
  SetFusionEnabledForTesting(fusion_mode);
  Rng rng(13);
  // Odd numel (3*7*17 = 357) so vector paths hit scalar tails.
  Tensor a = Tensor::Randn({3, 7, 17}, rng, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn({3, 7, 17}, rng, 1.0f, /*requires_grad=*/true);
  Tensor mask = Tensor::Rand({3, 7, 17}, rng, 0.5f, 1.5f);
  // A z-score -> bias -> activation -> mask pipeline plus a tail that forces
  // a chain split (> kMaxFusedSteps steps in total).
  Tensor z = Mul(a, b);
  z = AddScalar(z, 0.25f);
  z = Tanh(z);
  z = Mul(z, mask);
  z = Sigmoid(z);
  z = MulScalar(z, 1.5f);
  z = Sub(z, b);
  z = Square(z);
  z = LeakyRelu(z, 0.01f);  // step 9: exceeds kMaxFusedSteps, splits chain
  z = AddScalar(z, 0.125f);
  Tensor loss = Sum(z);
  loss.Backward();
  std::vector<float> out = {loss.Item()};
  out.insert(out.end(), a.Grad().begin(), a.Grad().end());
  out.insert(out.end(), b.Grad().begin(), b.Grad().end());
  return out;
}

TEST(Fusion, ForwardAndGradsBitwiseEqualUnfused) {
  SimdOverrideGuard guard;
  const auto fused = ChainForwardAndGrads(/*fusion_mode=*/1, /*threads=*/1);
  const auto eager = ChainForwardAndGrads(/*fusion_mode=*/0, /*threads=*/1);
  ExpectBitwiseEq(fused, eager, "fused vs eager chain");
}

TEST(Fusion, FusedChainBitwiseStableAcrossThreadCounts) {
  SimdOverrideGuard guard;
  const auto serial = ChainForwardAndGrads(/*fusion_mode=*/1, /*threads=*/1);
  EXPECT_EQ(serial, ChainForwardAndGrads(1, 4));
  EXPECT_EQ(serial, ChainForwardAndGrads(1, 8));
}

TEST(Fusion, FusedChainBitwiseEqualAcrossKernelSets) {
  SimdOverrideGuard guard;
  simd::SetKernelsForTesting(&simd::PortableKernels());
  const auto portable = ChainForwardAndGrads(1, 1);
  simd::SetKernelsForTesting(nullptr);
  const auto dispatched = ChainForwardAndGrads(1, 1);
  ExpectBitwiseEq(portable, dispatched, "fused chain across kernel sets");
}

TEST(Fusion, SharedPrefixAccumulatesGradientsFromBothConsumers) {
  SimdOverrideGuard guard;
  const auto run = [](int fusion_mode) {
    SetFusionEnabledForTesting(fusion_mode);
    Rng rng(14);
    Tensor a = Tensor::Randn({33}, rng, 1.0f, /*requires_grad=*/true);
    // `h` is consumed twice: extended into a longer chain AND used directly.
    Tensor h = Relu(a);
    Tensor loss = Add(Sum(Tanh(h)), Sum(Mul(h, h)));
    loss.Backward();
    std::vector<float> out = {loss.Item()};
    out.insert(out.end(), a.Grad().begin(), a.Grad().end());
    return out;
  };
  ExpectBitwiseEq(run(1), run(0), "shared prefix grads");
}

TEST(Fusion, RemovesIntermediateAllocations) {
  SimdOverrideGuard guard;
  const auto peak_bytes = [](int fusion_mode) {
    SetFusionEnabledForTesting(fusion_mode);
    Rng rng(15);
    Tensor a = Tensor::Randn({64, 64}, rng);
    const bool previous = obs::SetTraceEnabled(true);
    obs::ResetProfiler();
    {
      NoGradGuard no_grad;
      Tensor z = MulScalar(AddScalar(Tanh(MulScalar(a, 0.5f)), 1.0f), 0.25f);
      (void)z.Data();
    }
    const int64_t peak = obs::PeakTensorBytes();
    obs::ResetProfiler();
    obs::SetTraceEnabled(previous);
    return peak;
  };
  const int64_t fused_peak = peak_bytes(1);
  const int64_t eager_peak = peak_bytes(0);
  // Eager materializes every intermediate; the fused chain allocates only
  // the final output buffer.
  EXPECT_LT(fused_peak, eager_peak);
}

// Central-difference gradcheck over fused chains (mirrors autograd_test.cc).
void ExpectGradMatchesNumeric(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, float eps = 1e-2f, float tol = 2e-2f) {
  Tensor out = fn(inputs);
  ASSERT_EQ(out.Numel(), 1) << "gradcheck requires a scalar objective";
  for (auto& t : inputs) t.ZeroGrad();
  out.Backward();
  for (size_t which = 0; which < inputs.size(); ++which) {
    auto& t = inputs[which];
    ASSERT_FALSE(t.Grad().empty()) << "no gradient to input " << which;
    for (int64_t i = 0; i < t.Numel(); ++i) {
      const float saved = t.Data()[static_cast<size_t>(i)];
      float plus;
      float minus;
      {
        NoGradGuard no_grad;
        t.MutableData()[static_cast<size_t>(i)] = saved + eps;
        plus = fn(inputs).Item();
        t.MutableData()[static_cast<size_t>(i)] = saved - eps;
        minus = fn(inputs).Item();
        t.MutableData()[static_cast<size_t>(i)] = saved;
      }
      const float numeric = (plus - minus) / (2.0f * eps);
      const float analytic = t.Grad()[static_cast<size_t>(i)];
      EXPECT_NEAR(analytic, numeric, tol * std::max(1.0f, std::fabs(numeric)))
          << "input " << which << " element " << i;
    }
  }
}

TEST(Fusion, GradcheckFusedChainsOverTailSizes) {
  SimdOverrideGuard guard;
  SetFusionEnabledForTesting(1);
  for (int64_t n : {int64_t{1}, int64_t{3}, int64_t{7}, int64_t{17},
                    int64_t{63}}) {
    Rng rng(static_cast<uint64_t>(40 + n));
    // Values bounded away from the relu/abs kinks and div-by-zero.
    Tensor a = Tensor::Rand({n}, rng, 0.3f, 1.4f, /*requires_grad=*/true);
    Tensor b = Tensor::Rand({n}, rng, 0.6f, 1.8f, /*requires_grad=*/true);
    ExpectGradMatchesNumeric(
        [](const std::vector<Tensor>& in) {
          Tensor z = Mul(in[0], in[1]);
          z = AddScalar(z, 0.4f);
          z = Sigmoid(z);
          z = Div(z, in[1]);
          z = Tanh(z);
          return Sum(z);
        },
        {a, b});
    ExpectGradMatchesNumeric(
        [](const std::vector<Tensor>& in) {
          Tensor z = Exp(MulScalar(in[0], 0.5f));
          z = Log(z);
          z = Sqrt(z);
          z = Square(z);
          z = Sub(z, in[1]);
          return Sum(Square(z));
        },
        {a, b});
  }
}

// ----------------------------------------------------- vectorized op paths --

std::vector<float> SoftmaxForwardAndGrad(int threads, int64_t rows,
                                         int64_t cols) {
  ThreadCountGuard guard;
  exec::SetThreadCount(threads);
  Rng rng(static_cast<uint64_t>(50 + rows + cols));
  Tensor a = Tensor::Randn({rows, cols}, rng, 1.0f, /*requires_grad=*/true);
  Tensor weights = Tensor::Rand({rows, cols}, rng, 0.1f, 1.0f);
  Tensor loss = Sum(Mul(Softmax(a, -1), weights));
  loss.Backward();
  std::vector<float> out = {loss.Item()};
  out.insert(out.end(), a.Grad().begin(), a.Grad().end());
  return out;
}

TEST(SimdOps, SoftmaxBitwiseAcrossKernelSetsThreadsAndTails) {
  SimdOverrideGuard guard;
  for (int64_t cols : {int64_t{1}, int64_t{3}, int64_t{7}, int64_t{17},
                       int64_t{63}}) {
    simd::SetKernelsForTesting(&simd::PortableKernels());
    const auto portable = SoftmaxForwardAndGrad(1, 9, cols);
    simd::SetKernelsForTesting(nullptr);
    const auto dispatched = SoftmaxForwardAndGrad(1, 9, cols);
    ExpectBitwiseEq(portable, dispatched,
                    "softmax kernels cols=" + std::to_string(cols));
    EXPECT_EQ(dispatched, SoftmaxForwardAndGrad(8, 9, cols))
        << "softmax threads cols=" << cols;
  }
}

std::vector<float> ConvForwardAndGrad(const simd::MicrokernelSet* kernels) {
  simd::SetKernelsForTesting(kernels);
  Rng rng(60);
  Tensor input =
      Tensor::Randn({2, 3, 9, 7}, rng, 1.0f, /*requires_grad=*/true);
  Tensor weight = Tensor::Randn({4, 3, 3, 3}, rng, 1.0f,
                                /*requires_grad=*/true);
  Tensor bias = Tensor::Randn({4}, rng, 1.0f, /*requires_grad=*/true);
  Tensor loss = Sum(Square(Conv2d(input, weight, bias, 1, 1)));
  loss.Backward();
  std::vector<float> out = {loss.Item()};
  out.insert(out.end(), input.Grad().begin(), input.Grad().end());
  out.insert(out.end(), weight.Grad().begin(), weight.Grad().end());
  out.insert(out.end(), bias.Grad().begin(), bias.Grad().end());
  return out;
}

TEST(SimdOps, ConvBitwiseAcrossKernelSets) {
  SimdOverrideGuard guard;
  const auto portable = ConvForwardAndGrad(&simd::PortableKernels());
  const auto dispatched = ConvForwardAndGrad(nullptr);
  ExpectBitwiseEq(portable, dispatched, "conv2d fwd+bwd across kernel sets");
}

}  // namespace
}  // namespace sthsl
