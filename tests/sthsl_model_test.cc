// Tests for the ST-HSL core model: component shapes, loss wiring, ablation
// switches, gradient flow, and end-to-end learning on tiny synthetic data.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/ablation.h"
#include "core/forecaster.h"
#include "core/sthsl_model.h"
#include "data/generator.h"
#include "tensor/ops.h"

namespace sthsl {
namespace {

SthslConfig TinyConfig() {
  SthslConfig config;
  config.dim = 4;
  config.num_hyperedges = 8;
  config.kernel_size = 3;
  config.global_temporal_layers = 2;
  config.train.window = 7;
  config.train.epochs = 2;
  config.train.max_steps_per_epoch = 4;
  config.train.seed = 11;
  return config;
}

CrimeDataset TinyCity(int64_t days = 60) {
  CrimeGenConfig gen;
  gen.rows = 4;
  gen.cols = 4;
  gen.days = days;
  gen.num_zones = 3;
  gen.category_totals = {400, 900, 420, 520};
  gen.seed = 99;
  return GenerateCrimeData(gen);
}

TEST(SthslNetTest, ForwardShapesAndLosses) {
  Rng rng(1);
  SthslConfig config = TinyConfig();
  SthslNet net(config, 4, 4, 4, 0.2f, 0.5f, rng);
  Tensor window = Tensor::Rand({16, 7, 4}, rng, 0.0f, 3.0f);
  SthslNet::Output out = net.Forward(window, /*training=*/true);
  EXPECT_EQ(out.prediction.Shape(), (std::vector<int64_t>{16, 4}));
  ASSERT_TRUE(out.infomax_loss.Defined());
  ASSERT_TRUE(out.contrastive_loss.Defined());
  EXPECT_EQ(out.infomax_loss.Numel(), 1);
  EXPECT_EQ(out.contrastive_loss.Numel(), 1);
  // Infomax is a sum of two BCE-style terms; must be positive.
  EXPECT_GT(out.infomax_loss.Item(), 0.0f);
  // InfoNCE over R=16 negatives is at most log(16) when uninformative.
  EXPECT_GT(out.contrastive_loss.Item(), 0.0f);
  EXPECT_LT(out.contrastive_loss.Item(), 2.0f * std::log(16.0f));
}

TEST(SthslNetTest, EvalModeSkipsAuxLosses) {
  Rng rng(2);
  SthslNet net(TinyConfig(), 4, 4, 4, 0.2f, 0.5f, rng);
  net.SetTraining(false);
  Tensor window = Tensor::Rand({16, 7, 4}, rng, 0.0f, 3.0f);
  SthslNet::Output out = net.Forward(window, /*training=*/false);
  EXPECT_FALSE(out.infomax_loss.Defined());
  EXPECT_FALSE(out.contrastive_loss.Defined());
}

TEST(SthslNetTest, HyperedgeWeightsExposed) {
  Rng rng(3);
  SthslConfig config = TinyConfig();
  SthslNet net(config, 4, 4, 4, 0.0f, 1.0f, rng);
  Tensor hyper = net.hyperedge_weights();
  ASSERT_TRUE(hyper.Defined());
  EXPECT_EQ(hyper.Shape(), (std::vector<int64_t>{8, 16 * 4}));
}

TEST(SthslNetTest, GradientFlowsToAllParameters) {
  Rng rng(4);
  SthslConfig config = TinyConfig();
  SthslNet net(config, 4, 4, 4, 0.2f, 0.5f, rng);
  config.dropout = 0.0f;
  Tensor window = Tensor::Rand({16, 7, 4}, rng, 0.0f, 3.0f);
  SthslNet::Output out = net.Forward(window, /*training=*/true);
  Tensor target = Tensor::Rand({16, 4}, rng, 0.0f, 2.0f);
  Tensor loss = SquaredErrorSum(out.prediction, target);
  loss = Add(loss, out.infomax_loss);
  loss = Add(loss, out.contrastive_loss);
  loss.Backward();
  for (const auto& [name, p] : net.NamedParameters()) {
    ASSERT_FALSE(p.Grad().empty()) << "no grad for " << name;
    double norm = 0.0;
    for (float g : p.Grad()) norm += static_cast<double>(g) * g;
    EXPECT_GT(norm, 0.0) << "zero grad for " << name;
  }
}

TEST(SthslNetTest, LocalOnlyVariantHasNoHypergraph) {
  Rng rng(5);
  SthslConfig config = AblationVariant("w/o Hyper", TinyConfig());
  SthslNet net(config, 4, 4, 4, 0.2f, 0.5f, rng);
  EXPECT_FALSE(net.hyperedge_weights().Defined());
  Tensor window = Tensor::Rand({16, 7, 4}, rng, 0.0f, 3.0f);
  SthslNet::Output out = net.Forward(window, /*training=*/true);
  EXPECT_EQ(out.prediction.Shape(), (std::vector<int64_t>{16, 4}));
  EXPECT_FALSE(out.infomax_loss.Defined());
  EXPECT_FALSE(out.contrastive_loss.Defined());
}

TEST(SthslNetTest, AllVariantsForwardCleanly) {
  std::vector<std::string> names = SslVariantNames();
  auto local_names = LocalEncoderVariantNames();
  names.insert(names.end(), local_names.begin(), local_names.end());
  for (const auto& name : names) {
    Rng rng(6);
    SthslConfig config = AblationVariant(name, TinyConfig());
    SthslNet net(config, 4, 4, 4, 0.2f, 0.5f, rng);
    Tensor window = Tensor::Rand({16, 7, 4}, rng, 0.0f, 3.0f);
    SthslNet::Output out = net.Forward(window, /*training=*/true);
    EXPECT_EQ(out.prediction.Shape(), (std::vector<int64_t>{16, 4}))
        << "variant " << name;
    for (float v : out.prediction.Data()) {
      EXPECT_TRUE(std::isfinite(v)) << "variant " << name;
    }
  }
}

TEST(SthslNetTest, VariantParameterSetsDiffer) {
  Rng rng(7);
  SthslConfig base = TinyConfig();
  SthslNet full(base, 4, 4, 4, 0.0f, 1.0f, rng);
  SthslNet no_hyper(AblationVariant("w/o Hyper", base), 4, 4, 4, 0.0f, 1.0f,
                    rng);
  SthslNet no_local(AblationVariant("w/o Local", base), 4, 4, 4, 0.0f, 1.0f,
                    rng);
  EXPECT_GT(full.NumParameters(), no_hyper.NumParameters());
  EXPECT_GT(full.NumParameters(), no_local.NumParameters());
}

TEST(AblationTest, UnknownVariantListsAreComplete) {
  EXPECT_EQ(LocalEncoderVariantNames().size(), 5u);
  EXPECT_EQ(SslVariantNames().size(), 7u);
  // All names resolve without aborting.
  for (const auto& n : LocalEncoderVariantNames()) {
    AblationVariant(n, TinyConfig());
  }
  for (const auto& n : SslVariantNames()) {
    AblationVariant(n, TinyConfig());
  }
}

TEST(SthslForecasterTest, FitReducesTrainingLoss) {
  CrimeDataset data = TinyCity(80);
  SthslConfig config = TinyConfig();
  config.train.epochs = 8;
  config.train.max_steps_per_epoch = 8;
  config.train.lr = 5e-3f;
  SthslForecaster model(config);
  model.Fit(data, 60);
  // Prediction on a held-out day must be finite and non-negative.
  Tensor pred = model.PredictDay(data, 70);
  EXPECT_EQ(pred.Shape(), (std::vector<int64_t>{16, 4}));
  for (float v : pred.Data()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0f);
  }
  EXPECT_EQ(static_cast<int64_t>(model.EpochSeconds().size()), 8);
}

TEST(SthslForecasterTest, BeatsZeroPredictorOnSyntheticCity) {
  CrimeDataset data = TinyCity(120);
  SthslConfig config = TinyConfig();
  config.train.epochs = 12;
  config.train.max_steps_per_epoch = 12;
  config.train.lr = 5e-3f;
  SthslForecaster model(config);
  model.Fit(data, 100);
  CrimeMetrics metrics = EvaluateForecaster(model, data, 100, 120);
  EvalResult overall = metrics.Overall();
  ASSERT_GT(overall.evaluated_entries, 0);

  // A zero predictor scores MAE == mean positive count and MAPE == 1.
  CrimeMetrics zero_metrics(data.num_regions(), data.num_categories());
  for (int64_t t = 100; t < 120; ++t) {
    zero_metrics.AddDay(Tensor::Zeros({16, 4}), data.TargetDay(t));
  }
  EXPECT_LT(overall.mae, zero_metrics.Overall().mae);
  EXPECT_LT(overall.mape, 1.0);
}

TEST(SthslForecasterTest, DeterministicWithSameSeed) {
  CrimeDataset data = TinyCity(60);
  SthslConfig config = TinyConfig();
  SthslForecaster a(config);
  SthslForecaster b(config);
  a.Fit(data, 50);
  b.Fit(data, 50);
  Tensor pa = a.PredictDay(data, 55);
  Tensor pb = b.PredictDay(data, 55);
  EXPECT_EQ(pa.Data(), pb.Data());
}

}  // namespace
}  // namespace sthsl
