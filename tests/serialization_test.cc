// Tests for model checkpointing: exact round-trip, strict validation of
// architecture mismatches, corruption handling.

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/sthsl_model.h"
#include "nn/layers.h"
#include "nn/serialization.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace sthsl {
namespace {

const char* kPath = "/tmp/sthsl_checkpoint_test.bin";

TEST(SerializationTest, RoundTripRestoresExactValues) {
  Rng rng(1);
  Linear original(4, 3, rng);
  ASSERT_TRUE(SaveCheckpoint(original, kPath).ok());

  Rng rng2(999);  // different init
  Linear restored(4, 3, rng2);
  ASSERT_NE(restored.Parameters()[0].Data(),
            original.Parameters()[0].Data());
  ASSERT_TRUE(LoadCheckpoint(restored, kPath).ok());
  EXPECT_EQ(restored.Parameters()[0].Data(),
            original.Parameters()[0].Data());
  EXPECT_EQ(restored.Parameters()[1].Data(),
            original.Parameters()[1].Data());
  std::remove(kPath);
}

TEST(SerializationTest, NestedModuleRoundTrip) {
  Rng rng(2);
  GruCell original(3, 5, rng);
  ASSERT_TRUE(SaveCheckpoint(original, kPath).ok());
  Rng rng2(3);
  GruCell restored(3, 5, rng2);
  ASSERT_TRUE(LoadCheckpoint(restored, kPath).ok());
  // Same forward output after restore.
  Tensor x = Tensor::Ones({2, 3});
  Tensor h = Tensor::Zeros({2, 5});
  EXPECT_EQ(original.Forward(x, h).Data(), restored.Forward(x, h).Data());
  std::remove(kPath);
}

TEST(SerializationTest, SthslNetRoundTripPreservesPredictions) {
  Rng rng(4);
  SthslConfig config;
  config.dim = 4;
  config.num_hyperedges = 8;
  config.train.window = 7;
  SthslNet original(config, 3, 3, 2, 0.1f, 0.9f, rng);
  ASSERT_TRUE(SaveCheckpoint(original, kPath).ok());

  Rng rng2(5);
  SthslNet restored(config, 3, 3, 2, 0.1f, 0.9f, rng2);
  ASSERT_TRUE(LoadCheckpoint(restored, kPath).ok());
  Rng data_rng(6);
  Tensor window = Tensor::Rand({9, 7, 2}, data_rng, 0.0f, 2.0f);
  NoGradGuard no_grad;
  original.SetTraining(false);
  restored.SetTraining(false);
  EXPECT_EQ(original.Forward(window, false).prediction.Data(),
            restored.Forward(window, false).prediction.Data());
  std::remove(kPath);
}

TEST(SerializationTest, RejectsArchitectureMismatch) {
  Rng rng(7);
  Linear small(4, 3, rng);
  ASSERT_TRUE(SaveCheckpoint(small, kPath).ok());

  Linear different_shape(4, 5, rng);
  Status wrong_shape = LoadCheckpoint(different_shape, kPath);
  EXPECT_FALSE(wrong_shape.ok());

  GruCell different_arch(2, 2, rng);
  Status wrong_count = LoadCheckpoint(different_arch, kPath);
  EXPECT_FALSE(wrong_count.ok());
  EXPECT_EQ(wrong_count.code(), Status::Code::kFailedPrecondition);
  std::remove(kPath);
}

TEST(SerializationTest, RejectsCorruptFile) {
  {
    std::ofstream file(kPath, std::ios::binary);
    file << "not a checkpoint at all";
  }
  Rng rng(8);
  Linear layer(2, 2, rng);
  Status status = LoadCheckpoint(layer, kPath);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  std::remove(kPath);
}

TEST(SerializationTest, MissingFileIsIoError) {
  Rng rng(9);
  Linear layer(2, 2, rng);
  Status status = LoadCheckpoint(layer, "/tmp/definitely_absent_ckpt.bin");
  EXPECT_EQ(status.code(), Status::Code::kIoError);
}

}  // namespace
}  // namespace sthsl
