// Tests for model checkpointing: exact round-trip, strict validation of
// architecture mismatches, corruption handling.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include <gtest/gtest.h>

#include "core/sthsl_model.h"
#include "nn/layers.h"
#include "nn/serialization.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace sthsl {
namespace {

const char* kPath = "/tmp/sthsl_checkpoint_test.bin";

TEST(SerializationTest, RoundTripRestoresExactValues) {
  Rng rng(1);
  Linear original(4, 3, rng);
  ASSERT_TRUE(SaveCheckpoint(original, kPath).ok());

  Rng rng2(999);  // different init
  Linear restored(4, 3, rng2);
  ASSERT_NE(restored.Parameters()[0].Data(),
            original.Parameters()[0].Data());
  ASSERT_TRUE(LoadCheckpoint(restored, kPath).ok());
  EXPECT_EQ(restored.Parameters()[0].Data(),
            original.Parameters()[0].Data());
  EXPECT_EQ(restored.Parameters()[1].Data(),
            original.Parameters()[1].Data());
  std::remove(kPath);
}

TEST(SerializationTest, NestedModuleRoundTrip) {
  Rng rng(2);
  GruCell original(3, 5, rng);
  ASSERT_TRUE(SaveCheckpoint(original, kPath).ok());
  Rng rng2(3);
  GruCell restored(3, 5, rng2);
  ASSERT_TRUE(LoadCheckpoint(restored, kPath).ok());
  // Same forward output after restore.
  Tensor x = Tensor::Ones({2, 3});
  Tensor h = Tensor::Zeros({2, 5});
  EXPECT_EQ(original.Forward(x, h).Data(), restored.Forward(x, h).Data());
  std::remove(kPath);
}

TEST(SerializationTest, SthslNetRoundTripPreservesPredictions) {
  Rng rng(4);
  SthslConfig config;
  config.dim = 4;
  config.num_hyperedges = 8;
  config.train.window = 7;
  SthslNet original(config, 3, 3, 2, 0.1f, 0.9f, rng);
  ASSERT_TRUE(SaveCheckpoint(original, kPath).ok());

  Rng rng2(5);
  SthslNet restored(config, 3, 3, 2, 0.1f, 0.9f, rng2);
  ASSERT_TRUE(LoadCheckpoint(restored, kPath).ok());
  Rng data_rng(6);
  Tensor window = Tensor::Rand({9, 7, 2}, data_rng, 0.0f, 2.0f);
  NoGradGuard no_grad;
  original.SetTraining(false);
  restored.SetTraining(false);
  EXPECT_EQ(original.Forward(window, false).prediction.Data(),
            restored.Forward(window, false).prediction.Data());
  std::remove(kPath);
}

TEST(SerializationTest, RejectsArchitectureMismatch) {
  Rng rng(7);
  Linear small(4, 3, rng);
  ASSERT_TRUE(SaveCheckpoint(small, kPath).ok());

  Linear different_shape(4, 5, rng);
  Status wrong_shape = LoadCheckpoint(different_shape, kPath);
  EXPECT_FALSE(wrong_shape.ok());

  GruCell different_arch(2, 2, rng);
  Status wrong_count = LoadCheckpoint(different_arch, kPath);
  EXPECT_FALSE(wrong_count.ok());
  EXPECT_EQ(wrong_count.code(), Status::Code::kFailedPrecondition);
  std::remove(kPath);
}

TEST(SerializationTest, ShapeMismatchErrorNamesParameterAndShapes) {
  Rng rng(13);
  Linear saved(4, 3, rng);  // weight (4, 3), 12 elements
  ASSERT_TRUE(SaveCheckpoint(saved, kPath).ok());

  Linear wider(4, 5, rng);  // weight (4, 5), 20 elements
  Status status = LoadCheckpoint(wider, kPath);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kFailedPrecondition);
  // The message must identify the offending parameter and both shapes with
  // their element counts so an architecture-flag mismatch is diagnosable
  // from the error alone.
  EXPECT_NE(status.message().find("weight"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("[4, 5]"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("[4, 3]"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("20 elements"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("12 elements"), std::string::npos)
      << status.message();
  std::remove(kPath);
}

TEST(SerializationTest, RejectsCorruptFile) {
  {
    std::ofstream file(kPath, std::ios::binary);
    file << "not a checkpoint at all";
  }
  Rng rng(8);
  Linear layer(2, 2, rng);
  Status status = LoadCheckpoint(layer, kPath);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  std::remove(kPath);
}

TEST(SerializationTest, TruncatedFileAtEveryPrefixReturnsError) {
  Rng rng(10);
  Linear layer(4, 3, rng);
  ASSERT_TRUE(SaveCheckpoint(layer, kPath).ok());
  std::string full;
  {
    std::ifstream in(kPath, std::ios::binary);
    full.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(full.size(), 0u);

  // Loading any strict prefix of a valid checkpoint must fail cleanly —
  // never crash, never silently succeed.
  for (size_t len = 0; len < full.size(); ++len) {
    {
      std::ofstream out(kPath, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(len));
    }
    Rng rng2(11);
    Linear target(4, 3, rng2);
    EXPECT_FALSE(LoadCheckpoint(target, kPath).ok())
        << "truncated prefix of " << len << " bytes was accepted";
  }
  std::remove(kPath);
}

TEST(SerializationTest, GarbageSizeFieldsReturnErrorInsteadOfCrashing) {
  // Valid magic followed by a parameter whose shape claims ~10^18 elements:
  // the loader must reject the size instead of attempting the allocation.
  {
    std::ofstream out(kPath, std::ios::binary | std::ios::trunc);
    out.write("STHSLCK1", 8);
    auto write_u64 = [&out](uint64_t v) {
      unsigned char bytes[8];
      for (int i = 0; i < 8; ++i) {
        bytes[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
      }
      out.write(reinterpret_cast<const char*>(bytes), 8);
    };
    write_u64(1);  // one parameter
    write_u64(6);  // name length
    out.write("weight", 6);
    write_u64(2);                      // rank
    write_u64(1000000000ull);          // extent 0
    write_u64(1000000000ull);          // extent 1 -> 10^18 elements claimed
  }
  Rng rng(12);
  Linear layer(4, 3, rng);
  Status status = LoadCheckpoint(layer, kPath);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kIoError);

  // Same with an absurd parameter count and random tail bytes.
  {
    std::ofstream out(kPath, std::ios::binary | std::ios::trunc);
    out.write("STHSLCK1", 8);
    const std::string garbage(64, '\xff');
    out.write(garbage.data(),
              static_cast<std::streamsize>(garbage.size()));
  }
  status = LoadCheckpoint(layer, kPath);
  EXPECT_FALSE(status.ok());
  std::remove(kPath);
}

TEST(SerializationTest, MissingFileIsIoError) {
  Rng rng(9);
  Linear layer(2, 2, rng);
  Status status = LoadCheckpoint(layer, "/tmp/definitely_absent_ckpt.bin");
  EXPECT_EQ(status.code(), Status::Code::kIoError);
}

}  // namespace
}  // namespace sthsl
