// Focused tests of the self-supervised objectives (Eq. 6-8): value ranges,
// optima, and gradient behaviour of the infomax and contrastive losses.

#include <cmath>

#include <gtest/gtest.h>

#include "core/sthsl_model.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace sthsl {
namespace {

SthslConfig SmallConfig() {
  SthslConfig config;
  config.dim = 4;
  config.num_hyperedges = 8;
  config.global_temporal_layers = 1;
  config.dropout = 0.0f;
  return config;
}

// The infomax loss at a random initialization sits near 2*log(2) (~1.386):
// the discriminator is uninformative, sigm(score) ~ 0.5 on both classes.
TEST(SslLossTest, InfomaxStartsNearChance) {
  Rng rng(1);
  SthslNet net(SmallConfig(), 3, 3, 2, 0.0f, 1.0f, rng);
  // Scale inputs down so the bilinear scores start near zero.
  Tensor window = Tensor::Rand({9, 6, 2}, rng, 0.0f, 0.1f);
  SthslNet::Output out = net.Forward(window, /*training=*/true);
  ASSERT_TRUE(out.infomax_loss.Defined());
  EXPECT_NEAR(out.infomax_loss.Item(), 2.0f * std::log(2.0f), 0.4f);
}

// The contrastive loss of R regions with uninformative embeddings is close
// to log(R) (uniform softmax over negatives).
TEST(SslLossTest, ContrastiveStartsNearLogR) {
  Rng rng(2);
  SthslNet net(SmallConfig(), 3, 3, 2, 0.0f, 1.0f, rng);
  Tensor window = Tensor::Rand({9, 6, 2}, rng, 0.0f, 0.1f);
  SthslNet::Output out = net.Forward(window, /*training=*/true);
  ASSERT_TRUE(out.contrastive_loss.Defined());
  // tau scaling perturbs this; allow a generous band around log(9)=2.197.
  EXPECT_GT(out.contrastive_loss.Item(), 0.5f * std::log(9.0f));
  EXPECT_LT(out.contrastive_loss.Item(), 3.0f * std::log(9.0f));
}

// Training only the SSL objectives must reduce them: the gradients point
// the right way through the hypergraph and the local encoder.
TEST(SslLossTest, SslObjectivesAreOptimizable) {
  Rng rng(3);
  SthslConfig config = SmallConfig();
  SthslNet net(config, 3, 3, 2, 0.0f, 1.0f, rng);
  Rng data_rng(4);
  Tensor window = Tensor::Rand({9, 6, 2}, data_rng, 0.0f, 2.0f);

  Adam opt(net.Parameters(), 0.01f);
  float first = 0.0f;
  float last = 0.0f;
  for (int step = 0; step < 60; ++step) {
    opt.ZeroGrad();
    SthslNet::Output out = net.Forward(window, /*training=*/true);
    Tensor loss = Add(out.infomax_loss, out.contrastive_loss);
    loss.Backward();
    opt.Step();
    if (step == 0) first = loss.Item();
    last = loss.Item();
  }
  EXPECT_LT(last, first * 0.8f) << "SSL losses failed to optimize";
}

// The corruption really randomizes region identity: with a trained
// discriminator, positive scores should exceed negative scores. We verify
// the mechanical property instead: two forward passes draw different
// corruption permutations (the loss fluctuates), while eval passes are
// deterministic.
TEST(SslLossTest, CorruptionIsResampledPerForward) {
  Rng rng(5);
  SthslNet net(SmallConfig(), 3, 3, 2, 0.0f, 1.0f, rng);
  Rng data_rng(6);
  Tensor window = Tensor::Rand({9, 6, 2}, data_rng, 0.0f, 2.0f);
  SthslNet::Output a = net.Forward(window, /*training=*/true);
  SthslNet::Output b = net.Forward(window, /*training=*/true);
  // Same weights, same input: only the corruption differs.
  EXPECT_NE(a.infomax_loss.Item(), b.infomax_loss.Item());
  // Predictions are corruption-independent.
  EXPECT_EQ(a.prediction.Data(), b.prediction.Data());
}

// Perfectly aligned views: if local == global embeddings, the contrastive
// loss equals its anchor-diagonal optimum bound and cannot be negative.
TEST(SslLossTest, ContrastiveLossIsNonNegativeAndBounded) {
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    SthslNet net(SmallConfig(), 3, 3, 2, 0.0f, 1.0f, rng);
    Tensor window = Tensor::Rand({9, 6, 2}, rng, 0.0f, 3.0f);
    SthslNet::Output out = net.Forward(window, /*training=*/true);
    EXPECT_GE(out.contrastive_loss.Item(), 0.0f);
    // -log softmax diag <= -log of min prob; with |sim/tau| <= 2 the
    // worst case is bounded by log(R * e^4).
    EXPECT_LT(out.contrastive_loss.Item(),
              std::log(9.0f) + 4.0f + 1e-3f);
  }
}

}  // namespace
}  // namespace sthsl
