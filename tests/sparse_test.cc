// Tests for the sparse subsystem: COO/CSR layout round-trips and
// validation, SpMM / gather autograd against the dense reference (exact
// equality, per the bitwise-parity contract of docs/sparse.md), thread-count
// invariance, the dataset's sparse storage mode, and dense-vs-sparse
// training equivalence down to checkpoint bytes.

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sthsl_model.h"
#include "data/generator.h"
#include "data/stats.h"
#include "exec/exec.h"
#include "nn/serialization.h"
#include "sparse/sparse_tensor.h"
#include "tensor/ops.h"
#include "tensor/sparse_ops.h"
#include "util/obs/obs.h"
#include "util/rng.h"

namespace sthsl {
namespace {

using sparse::Layout;
using sparse::SparseTensor;
using sparse::ZeroPolicy;

class ThreadCountGuard {
 public:
  ThreadCountGuard() : previous_(exec::ThreadCount()) {}
  ~ThreadCountGuard() { exec::SetThreadCount(previous_); }

 private:
  int previous_;
};

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

// Roughly `density`-filled random dense buffer.
std::vector<float> RandomSparseData(Rng& rng, int64_t numel, double density) {
  std::vector<float> data(static_cast<size_t>(numel), 0.0f);
  for (auto& v : data) {
    if (rng.Bernoulli(density)) v = rng.Uniform(-2.0f, 2.0f);
  }
  return data;
}

// ------------------------------------------------------------- layouts --

TEST(SparseTensorTest, CooRoundTripProperty) {
  Rng rng(31);
  const std::vector<std::vector<int64_t>> shapes = {
      {7}, {5, 9}, {4, 6, 3}, {2, 3, 4, 5}};
  for (const auto& shape : shapes) {
    for (double density : {0.0, 0.05, 0.3, 1.0}) {
      const int64_t numel = NumelOf(shape);
      const std::vector<float> data = RandomSparseData(rng, numel, density);
      SparseTensor s = SparseTensor::FromDense(data.data(), shape);
      ASSERT_TRUE(s.Validate().ok());
      int64_t nnz = 0;
      for (float v : data) nnz += v != 0.0f ? 1 : 0;
      EXPECT_EQ(s.Nnz(), nnz);
      EXPECT_EQ(s.ToDense(), data);
    }
  }
}

TEST(SparseTensorTest, KeepExplicitZeroPolicyStoresEveryCell) {
  Rng rng(32);
  const std::vector<int64_t> shape = {6, 5};
  const std::vector<float> data = RandomSparseData(rng, 30, 0.2);
  SparseTensor s =
      SparseTensor::FromDense(data.data(), shape, ZeroPolicy::kKeepExplicit);
  ASSERT_TRUE(s.Validate().ok());
  EXPECT_EQ(s.Nnz(), 30);  // every cell, zeros included
  EXPECT_EQ(s.ToDense(), data);
  // The explicit pattern survives a CSR round-trip too.
  SparseTensor csr = s.ToCsr();
  EXPECT_EQ(csr.Nnz(), 30);
  EXPECT_EQ(csr.ToDense(), data);
}

TEST(SparseTensorTest, CooCsrConversionsShareValuesAndPreserveOrder) {
  Rng rng(33);
  const std::vector<int64_t> shape = {8, 11};
  const std::vector<float> data = RandomSparseData(rng, 88, 0.25);
  SparseTensor coo = SparseTensor::FromDense(data.data(), shape);
  SparseTensor csr = coo.ToCsr();
  ASSERT_TRUE(csr.Validate().ok());
  EXPECT_EQ(csr.layout(), Layout::kCsr);
  // Same value buffer, not a copy.
  EXPECT_EQ(coo.Values().data(), csr.Values().data());
  SparseTensor back = csr.ToCoo();
  ASSERT_TRUE(back.Validate().ok());
  EXPECT_EQ(back.FlatIndices(), coo.FlatIndices());
  EXPECT_EQ(back.Values().data(), coo.Values().data());
  EXPECT_EQ(csr.ToDense(), data);
}

TEST(SparseTensorTest, FromPartsRejectsMalformedInput) {
  // COO: unsorted, duplicated, out-of-range, size mismatch.
  EXPECT_FALSE(
      SparseTensor::CooFromParts({2, 3}, {4, 1}, {1.0f, 2.0f}).ok());
  EXPECT_FALSE(
      SparseTensor::CooFromParts({2, 3}, {1, 1}, {1.0f, 2.0f}).ok());
  EXPECT_FALSE(SparseTensor::CooFromParts({2, 3}, {6}, {1.0f}).ok());
  EXPECT_FALSE(SparseTensor::CooFromParts({2, 3}, {-1}, {1.0f}).ok());
  EXPECT_FALSE(SparseTensor::CooFromParts({2, 3}, {0, 1}, {1.0f}).ok());
  EXPECT_TRUE(
      SparseTensor::CooFromParts({2, 3}, {0, 4}, {1.0f, 2.0f}).ok());

  // CSR: wrong row_ptr size, non-monotone, bad endpoint, unsorted or
  // escaping columns, rank != 2.
  EXPECT_FALSE(
      SparseTensor::CsrFromParts({2, 3}, {0, 1}, {0}, {1.0f}).ok());
  EXPECT_FALSE(
      SparseTensor::CsrFromParts({2, 3}, {0, 2, 1}, {0}, {1.0f}).ok());
  EXPECT_FALSE(
      SparseTensor::CsrFromParts({2, 3}, {1, 1, 1}, {0}, {1.0f}).ok());
  EXPECT_FALSE(SparseTensor::CsrFromParts({2, 3}, {0, 2, 2}, {2, 1},
                                          {1.0f, 2.0f})
                   .ok());
  EXPECT_FALSE(
      SparseTensor::CsrFromParts({2, 3}, {0, 1, 1}, {3}, {1.0f}).ok());
  EXPECT_FALSE(
      SparseTensor::CsrFromParts({2, 3, 4}, {0, 1}, {0}, {1.0f}).ok());
  EXPECT_TRUE(SparseTensor::CsrFromParts({2, 3}, {0, 2, 3}, {0, 2, 1},
                                         {1.0f, 2.0f, 3.0f})
                  .ok());
}

TEST(SparseTensorTest, StorageBytesCountedByObsProfiler) {
  const bool previous = obs::SetTraceEnabled(true);
  obs::ResetProfiler();
  Rng rng(34);
  const std::vector<float> data = RandomSparseData(rng, 400, 0.1);
  {
    SparseTensor s = SparseTensor::FromDense(data.data(), {20, 20});
    EXPECT_EQ(obs::LiveTensorBytes(), s.StorageBytes());
    EXPECT_GT(s.StorageBytes(), 0);
    EXPECT_LT(s.StorageBytes(), 400 * 4);  // beats the dense footprint
  }
  EXPECT_EQ(obs::LiveTensorBytes(), 0);
  obs::SetTraceEnabled(previous);
}

// ------------------------------------------------------------- autograd --

// Sparse SpMM must match the dense MatMul reference bitwise — forward
// values, the dense-side gradient, and the values gradient at every stored
// coordinate (zero everywhere else: fixed-pattern semantics).
TEST(SparseOpsTest, SpmmMatchesDenseReferenceBitwise) {
  Rng rng(35);
  const int64_t m = 13;
  const int64_t k = 17;
  const int64_t n = 9;
  const std::vector<float> a_data = RandomSparseData(rng, m * k, 0.2);
  const std::vector<float> b_data = RandomSparseData(rng, k * n, 1.0);

  for (bool transpose_a : {false, true}) {
    const int64_t out_rows = transpose_a ? k : m;
    Tensor a_sparse_leaf = Tensor::FromVector({m, k}, a_data, true);
    Tensor a_dense_leaf = Tensor::FromVector({m, k}, a_data, true);
    Tensor b1 = Tensor::FromVector(
        {transpose_a ? m : k, n},
        std::vector<float>(b_data.begin(),
                           b_data.begin() + (transpose_a ? m : k) * n),
        true);
    Tensor b2 = Tensor::FromVector({transpose_a ? m : k, n},
                                   b1.Data(), true);

    SparseTensor csr = ToSparse(a_sparse_leaf).ToCsr();
    Tensor values = SparseValues(a_sparse_leaf, csr);
    Tensor out_sparse = SpMM(csr, values, b1, transpose_a);
    Tensor out_dense =
        transpose_a
            ? MatMul(Transpose(a_dense_leaf, 0, 1), b2)
            : MatMul(a_dense_leaf, b2);
    ASSERT_EQ(out_sparse.Shape(), (std::vector<int64_t>{out_rows, n}));
    EXPECT_EQ(out_sparse.Data(), out_dense.Data())
        << "forward mismatch, transpose_a=" << transpose_a;

    Tensor seed = Tensor::Rand({out_rows, n}, rng, -1.0f, 1.0f);
    out_sparse.Backward(seed);
    out_dense.Backward(seed);

    // Dense-side grad: bitwise identical.
    EXPECT_EQ(b1.Grad(), b2.Grad())
        << "b grad mismatch, transpose_a=" << transpose_a;
    // Sparse-side grad: equal to the dense grad at stored coordinates,
    // exactly zero off-pattern.
    const auto& ga = a_sparse_leaf.Grad();
    const auto& ga_ref = a_dense_leaf.Grad();
    ASSERT_EQ(ga.size(), ga_ref.size());
    for (size_t i = 0; i < ga.size(); ++i) {
      if (a_data[i] != 0.0f) {
        EXPECT_EQ(ga[i], ga_ref[i]) << "values grad mismatch at " << i;
      } else {
        EXPECT_EQ(ga[i], 0.0f) << "off-pattern grad leaked at " << i;
      }
    }
  }
}

TEST(SparseOpsTest, GatherRowsMatchesManualReference) {
  Rng rng(36);
  const int64_t num = 10;
  const int64_t width = 6;
  Tensor table =
      Tensor::FromVector({num, width}, RandomSparseData(rng, 60, 1.0), true);
  // Duplicates on purpose: the scatter-add order must be deterministic.
  const std::vector<int64_t> indices = {3, 0, 3, 9, 3, 0};
  Tensor out = GatherRows(table, indices);
  ASSERT_EQ(out.Shape(),
            (std::vector<int64_t>{static_cast<int64_t>(indices.size()),
                                  width}));
  for (size_t i = 0; i < indices.size(); ++i) {
    for (int64_t j = 0; j < width; ++j) {
      EXPECT_EQ(out.At({static_cast<int64_t>(i), j}),
                table.At({indices[i], j}));
    }
  }

  Tensor seed = Tensor::Rand(
      {static_cast<int64_t>(indices.size()), width}, rng, -1.0f, 1.0f);
  out.Backward(seed);
  // Reference accumulation in ascending gather-row order — exactly the
  // kernel's contract.
  std::vector<float> expected(static_cast<size_t>(num * width), 0.0f);
  for (size_t i = 0; i < indices.size(); ++i) {
    for (int64_t j = 0; j < width; ++j) {
      expected[static_cast<size_t>(indices[i] * width + j)] +=
          seed.At({static_cast<int64_t>(i), j});
    }
  }
  EXPECT_EQ(table.Grad(), expected);
}

TEST(SparseOpsTest, SparseValuesRoundTripsAndScattersGrad) {
  Rng rng(37);
  const std::vector<float> data = RandomSparseData(rng, 48, 0.3);
  Tensor dense = Tensor::FromVector({6, 8}, data, true);
  SparseTensor pattern = ToSparse(dense);
  Tensor values = SparseValues(dense, pattern);
  ASSERT_EQ(values.Numel(), pattern.Nnz());
  // Gathered in storage order.
  const auto& flat = pattern.FlatIndices();
  for (int64_t e = 0; e < values.Numel(); ++e) {
    EXPECT_EQ(values.At(e), data[static_cast<size_t>(flat[e])]);
  }
  Tensor seed = Tensor::Rand({values.Numel()}, rng, -1.0f, 1.0f);
  values.Backward(seed);
  const auto& grad = dense.Grad();
  int64_t e = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i] != 0.0f) {
      EXPECT_EQ(grad[i], seed.At(e++));
    } else {
      EXPECT_EQ(grad[i], 0.0f);
    }
  }
}

TEST(SparseOpsTest, BitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(38);
  const int64_t m = 37;
  const int64_t k = 53;
  const int64_t n = 19;
  const std::vector<float> a_data = RandomSparseData(rng, m * k, 0.15);
  const std::vector<float> b_data = RandomSparseData(rng, k * n, 1.0);
  const std::vector<float> seed_data = RandomSparseData(rng, m * n, 1.0);
  const std::vector<int64_t> indices = {11, 2, 11, 36, 0, 7, 11};

  auto run = [&](int threads) {
    exec::SetThreadCount(threads);
    Tensor a = Tensor::FromVector({m, k}, a_data, true);
    Tensor b = Tensor::FromVector({k, n}, b_data, true);
    SparseTensor csr = ToSparse(a).ToCsr();
    Tensor values = SparseValues(a, csr);
    Tensor out = SpMM(csr, values, b);
    out.Backward(Tensor::FromVector({m, n}, seed_data));

    Tensor table = Tensor::FromVector({m, k}, a_data, true);
    Tensor gathered = GatherRows(table, indices);
    gathered.Backward(Tensor::Full(gathered.Shape(), 0.5f));

    struct Snapshot {
      std::vector<float> out, da, db, gathered, dtable;
    };
    return Snapshot{out.Data(), a.Grad(), b.Grad(), gathered.Data(),
                    table.Grad()};
  };

  const auto one = run(1);
  for (int threads : {2, 8}) {
    const auto multi = run(threads);
    EXPECT_EQ(one.out, multi.out) << threads << " threads";
    EXPECT_EQ(one.da, multi.da) << threads << " threads";
    EXPECT_EQ(one.db, multi.db) << threads << " threads";
    EXPECT_EQ(one.gathered, multi.gathered) << threads << " threads";
    EXPECT_EQ(one.dtable, multi.dtable) << threads << " threads";
  }
}

// -------------------------------------------------------------- dataset --

CrimeDataset SparseTestCity(int64_t days = 64) {
  CrimeGenConfig gen;
  gen.rows = 4;
  gen.cols = 4;
  gen.days = days;
  gen.num_zones = 3;
  gen.category_totals = {300, 700, 350, 400};
  gen.seed = 77;
  return GenerateCrimeData(gen);
}

TEST(SparseDatasetTest, SparseStorageMatchesDenseExactly) {
  // Same underlying tensor, both storage modes.
  EnvGuard dense_env("STHSL_DATA_SPARSE_THRESHOLD", "0");
  CrimeDataset dense = SparseTestCity();
  ASSERT_FALSE(dense.sparse_storage());
  CrimeDataset sparse = [&] {
    EnvGuard sparse_env("STHSL_DATA_SPARSE_THRESHOLD", "1");
    return SparseTestCity();
  }();
  ASSERT_TRUE(sparse.sparse_storage());

  EXPECT_EQ(dense.Nnz(), sparse.Nnz());
  EXPECT_EQ(dense.Density(), sparse.Density());
  for (int64_t c = 0; c < dense.num_categories(); ++c) {
    EXPECT_EQ(dense.CategoryTotal(c), sparse.CategoryTotal(c)) << c;
  }
  for (int64_t r = 0; r < dense.num_regions(); ++r) {
    EXPECT_EQ(dense.DensityDegree(r), sparse.DensityDegree(r)) << r;
  }
  float mean_d, std_d, mean_s, std_s;
  dense.ComputeMoments(&mean_d, &std_d);
  sparse.ComputeMoments(&mean_s, &std_s);
  EXPECT_EQ(mean_d, mean_s);
  EXPECT_EQ(std_d, std_s);
  EXPECT_EQ(dense.WindowInput(20, 7).Data(), sparse.WindowInput(20, 7).Data());
  EXPECT_EQ(dense.TargetDay(33).Data(), sparse.TargetDay(33).Data());
  for (int64_t r = 0; r < dense.num_regions(); ++r) {
    for (int64_t c = 0; c < dense.num_categories(); ++c) {
      EXPECT_EQ(dense.Count(r, 12, c), sparse.Count(r, 12, c));
    }
  }
  // Slicing re-engages the mode decision but never changes values.
  CrimeDataset dslice = dense.SliceDays(10, 30);
  CrimeDataset sslice = sparse.SliceDays(10, 30);
  EXPECT_EQ(dslice.counts().Data(), sslice.counts().Data());
  // CSV bytes are independent of the storage mode.
  ASSERT_TRUE(dense.SaveCsv("/tmp/sparse_test_dense.csv").ok());
  ASSERT_TRUE(sparse.SaveCsv("/tmp/sparse_test_sparse.csv").ok());
  EXPECT_EQ(ReadFileBytes("/tmp/sparse_test_dense.csv"),
            ReadFileBytes("/tmp/sparse_test_sparse.csv"));
  // The lazy dense materialization is value-identical too.
  EXPECT_EQ(dense.counts().Data(), sparse.counts().Data());
}

TEST(SparseDatasetTest, WindowStatsMatchManualCount) {
  CrimeDataset data = SparseTestCity();
  const int64_t window = 7;
  const int64_t t_end = 30;
  int64_t expected = 0;
  for (int64_t r = 0; r < data.num_regions(); ++r) {
    for (int64_t t = t_end - window; t < t_end; ++t) {
      for (int64_t c = 0; c < data.num_categories(); ++c) {
        expected += data.Count(r, t, c) != 0.0f ? 1 : 0;
      }
    }
  }
  EXPECT_EQ(data.WindowNnz(t_end, window), expected);
  const double cells = static_cast<double>(
      data.num_regions() * window * data.num_categories());
  EXPECT_DOUBLE_EQ(data.WindowDensity(t_end, window), expected / cells);

  const WindowDensitySummary summary = SummarizeWindowDensity(data, window);
  EXPECT_EQ(summary.num_windows, data.num_days() - window + 1);
  EXPECT_LE(summary.min_nnz, expected);
  EXPECT_GE(summary.max_nnz, expected);
  EXPECT_GT(summary.mean_density, 0.0);
  EXPECT_LE(summary.mean_density, 1.0);
}

// -------------------------------------------------------------- training --

SthslConfig SparseTrainConfig() {
  SthslConfig config;
  config.dim = 4;
  config.num_hyperedges = 8;
  config.kernel_size = 3;
  config.global_temporal_layers = 2;
  config.train.window = 7;
  config.train.epochs = 2;
  config.train.max_steps_per_epoch = 4;
  config.train.seed = 11;
  return config;
}

// The whole point of the dataset sparse mode: training consumes windows,
// targets and moments only, and all of them are exact, so the trajectory is
// identical whichever way the tensor is stored.
TEST(SparseTrainingTest, TrajectoryIdenticalAcrossDatasetStorageModes) {
  SthslConfig config = SparseTrainConfig();
  Tensor pred_dense, pred_sparse;
  {
    EnvGuard env("STHSL_DATA_SPARSE_THRESHOLD", "0");
    CrimeDataset data = SparseTestCity();
    ASSERT_FALSE(data.sparse_storage());
    SthslForecaster model(config);
    model.Fit(data, 50);
    pred_dense = model.PredictDay(data, 55);
  }
  {
    EnvGuard env("STHSL_DATA_SPARSE_THRESHOLD", "1");
    CrimeDataset data = SparseTestCity();
    ASSERT_TRUE(data.sparse_storage());
    SthslForecaster model(config);
    model.Fit(data, 50);
    pred_sparse = model.PredictDay(data, 55);
  }
  EXPECT_EQ(pred_dense.Data(), pred_sparse.Data());
}

// Dense/sparse dispatch parity at the hypergraph site, asserted down to
// checkpoint bytes: the same sparse incidence pattern trained through the
// CSR SpMM path and through the masked-dense GEMM path must produce
// byte-identical checkpoints.
TEST(SparseTrainingTest, SparseAndMaskedDensePathsProduceIdenticalCheckpoints) {
  CrimeDataset data = SparseTestCity();
  SthslConfig sparse_cfg = SparseTrainConfig();
  sparse_cfg.hypergraph_density = 0.2f;
  sparse_cfg.sparse_threshold = 1.0f;  // always take the SpMM path
  SthslConfig masked_cfg = sparse_cfg;
  masked_cfg.sparse_threshold = 0.0f;  // always take the masked-dense path

  SthslForecaster sparse_model(sparse_cfg);
  SthslForecaster masked_model(masked_cfg);
  sparse_model.Fit(data, 50);
  masked_model.Fit(data, 50);

  ASSERT_TRUE(
      SaveCheckpoint(*sparse_model.net(), "/tmp/sparse_path_ckpt.bin").ok());
  ASSERT_TRUE(
      SaveCheckpoint(*masked_model.net(), "/tmp/masked_path_ckpt.bin").ok());
  const std::string sparse_bytes = ReadFileBytes("/tmp/sparse_path_ckpt.bin");
  ASSERT_FALSE(sparse_bytes.empty());
  EXPECT_EQ(sparse_bytes, ReadFileBytes("/tmp/masked_path_ckpt.bin"));

  // Fixed-pattern contract: the zero coordinates never came back to life.
  Tensor h = sparse_model.net()->hyperedge_weights();
  int64_t zeros = 0;
  for (float v : h.Data()) zeros += v == 0.0f ? 1 : 0;
  EXPECT_GT(zeros, h.Numel() / 2);  // density 0.2 keeps most entries zero
  // And the predictions agree bitwise as well.
  EXPECT_EQ(sparse_model.PredictDay(data, 55).Data(),
            masked_model.PredictDay(data, 55).Data());
}

}  // namespace
}  // namespace sthsl
