// Tests for the crime-data substrate: dataset accessors, splits, CSV
// round-trip, and statistical properties of the synthetic generator (the
// phenomena of the paper's Figs. 1-2 must actually be planted).

#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>

#include <gtest/gtest.h>

#include "data/crime_dataset.h"
#include "data/generator.h"
#include "data/stats.h"

namespace sthsl {
namespace {

CrimeDataset TinyDataset() {
  // 2x1 regions, 4 days, 2 categories. Region 0 busy, region 1 quiet.
  std::vector<float> counts = {
      // region 0: day-major, categories inner
      2, 0, 1, 1, 0, 3, 4, 0,
      // region 1
      0, 0, 0, 1, 0, 0, 0, 0,
  };
  return CrimeDataset("tiny", 2, 1, {"A", "B"},
                      Tensor::FromVector({2, 4, 2}, counts));
}

TEST(CrimeDatasetTest, BasicAccessors) {
  CrimeDataset data = TinyDataset();
  EXPECT_EQ(data.num_regions(), 2);
  EXPECT_EQ(data.num_days(), 4);
  EXPECT_EQ(data.num_categories(), 2);
  EXPECT_EQ(data.Count(0, 0, 0), 2.0f);
  EXPECT_EQ(data.Count(0, 3, 0), 4.0f);
  EXPECT_EQ(data.Count(1, 1, 1), 1.0f);
}

TEST(CrimeDatasetTest, CategoryTotals) {
  CrimeDataset data = TinyDataset();
  EXPECT_DOUBLE_EQ(data.CategoryTotal(0), 2 + 1 + 4);
  EXPECT_DOUBLE_EQ(data.CategoryTotal(1), 3 + 1 + 1);
}

TEST(CrimeDatasetTest, DensityDegrees) {
  CrimeDataset data = TinyDataset();
  // Region 0 has crime on all 4 days; region 1 only on day 1.
  EXPECT_DOUBLE_EQ(data.DensityDegree(0), 1.0);
  EXPECT_DOUBLE_EQ(data.DensityDegree(1), 0.25);
  // Category-specific: region 0 category 0 active on days 0,1,3.
  EXPECT_DOUBLE_EQ(data.DensityDegree(0, 0), 0.75);
  EXPECT_DOUBLE_EQ(data.DensityDegree(1, 0), 0.0);
}

TEST(CrimeDatasetTest, WindowAndTarget) {
  CrimeDataset data = TinyDataset();
  Tensor window = data.WindowInput(3, 2);  // days 1..2
  EXPECT_EQ(window.Shape(), (std::vector<int64_t>{2, 2, 2}));
  EXPECT_EQ(window.At({0, 0, 0}), 1.0f);  // region 0, day 1, cat 0
  Tensor target = data.TargetDay(3);
  EXPECT_EQ(target.Shape(), (std::vector<int64_t>{2, 2}));
  EXPECT_EQ(target.At({0, 0}), 4.0f);
}

TEST(CrimeDatasetTest, SliceDays) {
  CrimeDataset data = TinyDataset();
  CrimeDataset tail = data.SliceDays(2, 2);
  EXPECT_EQ(tail.num_days(), 2);
  EXPECT_EQ(tail.Count(0, 1, 0), 4.0f);
}

TEST(CrimeDatasetTest, MomentsMatchManualComputation) {
  CrimeDataset data = TinyDataset();
  float mean;
  float stddev;
  data.ComputeMoments(&mean, &stddev);
  const auto& v = data.counts().Data();
  double m = std::accumulate(v.begin(), v.end(), 0.0) / v.size();
  EXPECT_NEAR(mean, m, 1e-6);
  EXPECT_GT(stddev, 0.0f);
}

TEST(CrimeDatasetTest, SplitProportions) {
  CrimeGenConfig config;
  config.rows = 4;
  config.cols = 4;
  config.days = 240;
  CrimeDataset data = GenerateCrimeData(config);
  DatasetSplit split = SplitDataset(data, /*validation_days=*/30);
  EXPECT_EQ(split.test_days, 30);                 // 240 / 8
  EXPECT_EQ(split.validation_days, 30);
  EXPECT_EQ(split.train_days, 240 - 30 - 30);
  EXPECT_EQ(split.train.num_days() + split.validation.num_days() +
                split.test.num_days(),
            240);
}

TEST(CrimeDatasetTest, CsvRoundTrip) {
  CrimeDataset data = TinyDataset();
  const std::string path = "/tmp/sthsl_test_roundtrip.csv";
  ASSERT_TRUE(data.SaveCsv(path).ok());
  auto loaded_or = CrimeDataset::LoadCsv(path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const CrimeDataset& loaded = loaded_or.value();
  EXPECT_EQ(loaded.city_name(), "tiny");
  EXPECT_EQ(loaded.num_regions(), data.num_regions());
  EXPECT_EQ(loaded.num_days(), data.num_days());
  EXPECT_EQ(loaded.num_categories(), data.num_categories());
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t t = 0; t < 4; ++t) {
      for (int64_t c = 0; c < 2; ++c) {
        EXPECT_EQ(loaded.Count(r, t, c), data.Count(r, t, c));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(CrimeDatasetTest, CsvRoundTripWithNonZeroLastCell) {
  // Regression: the extent sentinel must not clobber a real count at the
  // last (region, day, category) cell.
  std::vector<float> counts = {1, 2, 3, 4, 5, 6, 7, 8};
  CrimeDataset data("t", 2, 1, {"A", "B"},
                    Tensor::FromVector({2, 2, 2}, counts));
  const std::string path = "/tmp/sthsl_test_last_cell.csv";
  ASSERT_TRUE(data.SaveCsv(path).ok());
  auto loaded = CrimeDataset::LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().Count(1, 1, 1), 8.0f);
  std::remove(path.c_str());
}

TEST(CrimeDatasetTest, LoadMissingFileFails) {
  auto result = CrimeDataset::LoadCsv("/tmp/does_not_exist_sthsl.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kIoError);
}

// -- Generator statistical properties --------------------------------------------

TEST(GeneratorTest, DeterministicInSeed) {
  CrimeGenConfig config;
  config.rows = 3;
  config.cols = 3;
  config.days = 30;
  CrimeDataset a = GenerateCrimeData(config);
  CrimeDataset b = GenerateCrimeData(config);
  EXPECT_EQ(a.counts().Data(), b.counts().Data());
  config.seed += 1;
  CrimeDataset c = GenerateCrimeData(config);
  EXPECT_NE(a.counts().Data(), c.counts().Data());
}

TEST(GeneratorTest, CategoryTotalsNearTargets) {
  CrimeGenConfig config = NycSmallPreset();
  CrimeDataset data = GenerateCrimeData(config);
  for (int64_t c = 0; c < data.num_categories(); ++c) {
    const double target = config.category_totals[static_cast<size_t>(c)];
    const double actual = data.CategoryTotal(c);
    // Poisson emission + zone fluctuation: expect within 25% of target.
    EXPECT_GT(actual, target * 0.75) << "category " << c;
    EXPECT_LT(actual, target * 1.25) << "category " << c;
  }
}

TEST(GeneratorTest, PlantsSkewedSpatialDistribution) {
  CrimeDataset data = GenerateCrimeData(NycSmallPreset());
  // The paper's Fig. 2: heavy-tailed region totals. Gini above 0.4 means a
  // strongly skewed distribution.
  for (int64_t c = 0; c < data.num_categories(); ++c) {
    EXPECT_GT(SpatialGini(data, c), 0.4) << "category " << c;
  }
  // Top region should dwarf the median region.
  auto sorted = SortedRegionCounts(data, 0, 0, data.num_days());
  EXPECT_GT(sorted.front(), 5.0 * sorted[sorted.size() / 2]);
}

TEST(GeneratorTest, PlantsSparseDensities) {
  CrimeDataset data = GenerateCrimeData(NycSmallPreset());
  // The paper's Fig. 1: a large share of regions live in the sparse bins.
  auto histogram = DensityHistogram(data, 0.25);
  ASSERT_EQ(histogram.size(), 4u);
  const int64_t total =
      std::accumulate(histogram.begin(), histogram.end(), int64_t{0});
  EXPECT_EQ(total, data.num_regions());
  // Sparse half (density <= 0.5) must hold a substantial fraction.
  EXPECT_GT(histogram[0] + histogram[1], total / 3);
}

TEST(GeneratorTest, SortedCountsMonotone) {
  CrimeDataset data = GenerateCrimeData(ChicagoSmallPreset());
  auto sorted = SortedRegionCounts(data, 1, 0, 30);
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(sorted[i], sorted[i - 1]);
  }
}

TEST(GeneratorTest, RegionsInDensityRangePartition) {
  CrimeDataset data = GenerateCrimeData(NycSmallPreset());
  auto sparse = RegionsInDensityRange(data, 0.0, 0.25);
  auto mid = RegionsInDensityRange(data, 0.25, 0.5);
  auto dense = RegionsInDensityRange(data, 0.5, 1.0);
  auto zero = RegionsInDensityRange(data, -1.0, 0.0);
  EXPECT_EQ(static_cast<int64_t>(sparse.size() + mid.size() + dense.size() +
                                 zero.size()),
            data.num_regions());
}

TEST(GeneratorTest, PresetDimensionsMatchPaper) {
  CrimeGenConfig nyc = NycPreset();
  EXPECT_EQ(nyc.rows * nyc.cols, 256);  // paper: 256 regions in NYC
  EXPECT_EQ(nyc.days, 730);
  CrimeGenConfig chi = ChicagoPreset();
  EXPECT_EQ(chi.rows * chi.cols, 168);  // paper: 168 regions in Chicago
  EXPECT_EQ(chi.category_names.size(), 4u);
}

TEST(GeneratorTest, ZoneStructureInducesCrossRegionCorrelation) {
  // Two runs of the same city must show higher correlation between nearby
  // region pairs than the global average — i.e. spatial structure exists.
  CrimeGenConfig config = NycSmallPreset();
  config.days = 365;
  CrimeDataset data = GenerateCrimeData(config);
  const int64_t days = data.num_days();

  auto daily_series = [&](int64_t r) {
    std::vector<double> series(static_cast<size_t>(days), 0.0);
    for (int64_t t = 0; t < days; ++t) {
      for (int64_t c = 0; c < data.num_categories(); ++c) {
        series[static_cast<size_t>(t)] += data.Count(r, t, c);
      }
    }
    return series;
  };
  auto correlation = [&](const std::vector<double>& a,
                         const std::vector<double>& b) {
    const double n = static_cast<double>(a.size());
    double ma = 0.0;
    double mb = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      ma += a[i];
      mb += b[i];
    }
    ma /= n;
    mb /= n;
    double cov = 0.0;
    double va = 0.0;
    double vb = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      cov += (a[i] - ma) * (b[i] - mb);
      va += (a[i] - ma) * (a[i] - ma);
      vb += (b[i] - mb) * (b[i] - mb);
    }
    if (va <= 0.0 || vb <= 0.0) return 0.0;
    return cov / std::sqrt(va * vb);
  };

  // Busiest region and its grid neighbor should correlate positively via the
  // shared zone fluctuation.
  auto totals = SortedRegionCounts(data, 0, 0, days);
  int64_t busiest = 0;
  double best = -1.0;
  for (int64_t r = 0; r < data.num_regions(); ++r) {
    double total = 0.0;
    for (int64_t t = 0; t < days; ++t) total += data.Count(r, t, 0);
    if (total > best) {
      best = total;
      busiest = r;
    }
  }
  const int64_t neighbor =
      busiest % data.cols() + 1 < data.cols() ? busiest + 1 : busiest - 1;
  const double corr =
      correlation(daily_series(busiest), daily_series(neighbor));
  EXPECT_GT(corr, 0.1) << "neighboring regions should co-fluctuate";
}

}  // namespace
}  // namespace sthsl
