// Tests for the sthsl::serve subsystem: micro-batcher flush rules, LRU
// prediction-cache accounting, HTTP request parsing limits, bundle
// round-trip, and an end-to-end loopback check that served predictions are
// bitwise identical to a direct Forecaster call (cold and cached).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "serve/access_log.h"
#include "serve/batcher.h"
#include "serve/bundle.h"
#include "serve/cache.h"
#include "serve/engine.h"
#include "serve/http.h"
#include "serve/service.h"
#include "serve/trace.h"
#include "util/json_mini.h"

namespace sthsl::serve {
namespace {

Tensor MakeWindow(float fill) { return Tensor::Full({2, 3, 4}, fill); }

MicroBatcher::BatchFn EchoBatch() {
  return [](const std::vector<Tensor>& windows) { return windows; };
}

TEST(MicroBatcherTest, SizeBoundFlushesFullBatch) {
  MicroBatcher::Config config;
  config.max_batch_size = 4;
  config.max_wait_us = 10'000'000;  // effectively never; size must trigger
  config.worker_threads = 1;
  MicroBatcher batcher(config, EchoBatch());

  std::vector<std::future<MicroBatcher::Ticket>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(batcher.Submit(MakeWindow(static_cast<float>(i))));
  }
  for (int i = 0; i < 4; ++i) {
    const MicroBatcher::Ticket ticket = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(ticket.value.Defined());
    EXPECT_EQ(ticket.value.Data()[0], static_cast<float>(i));  // order kept
    EXPECT_EQ(ticket.batch_size, 4);  // all four rode in one batch
    EXPECT_GE(ticket.queue_wait_us, 0.0);
    EXPECT_GE(ticket.inference_us, 0.0);
  }
  const MicroBatcher::Stats stats = batcher.GetStats();
  EXPECT_EQ(stats.requests, 4);
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.size_flushes, 1);
  EXPECT_EQ(stats.timeout_flushes, 0);
}

TEST(MicroBatcherTest, WaitBoundFlushesLoneRequest) {
  MicroBatcher::Config config;
  config.max_batch_size = 64;  // never reached
  config.max_wait_us = 5000;
  config.worker_threads = 1;
  MicroBatcher batcher(config, EchoBatch());

  const MicroBatcher::Ticket ticket = batcher.Submit(MakeWindow(7.0f)).get();
  ASSERT_TRUE(ticket.value.Defined());
  EXPECT_EQ(ticket.value.Data()[0], 7.0f);
  EXPECT_EQ(ticket.batch_size, 1);
  // The lone request waited out (most of) the flush deadline.
  EXPECT_GT(ticket.queue_wait_us, 0.0);
  const MicroBatcher::Stats stats = batcher.GetStats();
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.timeout_flushes, 1);
  EXPECT_EQ(stats.size_flushes, 0);
}

TEST(MicroBatcherTest, ShutdownDrainsQueueAndRejectsLateSubmits) {
  MicroBatcher::Config config;
  config.max_batch_size = 64;
  config.max_wait_us = 10'000'000;  // queued work only leaves via the drain
  config.worker_threads = 2;
  MicroBatcher batcher(config, EchoBatch());

  std::vector<std::future<MicroBatcher::Ticket>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(batcher.Submit(MakeWindow(static_cast<float>(i))));
  }
  batcher.Shutdown();
  for (int i = 0; i < 3; ++i) {
    const MicroBatcher::Ticket ticket = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(ticket.value.Defined());  // drained, not dropped
    EXPECT_EQ(ticket.value.Data()[0], static_cast<float>(i));
  }
  const MicroBatcher::Stats stats = batcher.GetStats();
  EXPECT_EQ(stats.requests, 3);
  EXPECT_GE(stats.drain_flushes, 1);

  // Submitting after shutdown resolves immediately with an undefined Tensor.
  const MicroBatcher::Ticket late = batcher.Submit(MakeWindow(9.0f)).get();
  EXPECT_FALSE(late.value.Defined());
  EXPECT_EQ(late.batch_size, 0);
  batcher.Shutdown();  // idempotent
}

TEST(PredictionCacheTest, LruEvictionAndHitAccounting) {
  PredictionCache cache(/*capacity=*/2, /*num_shards=*/1);
  const Tensor a = MakeWindow(1.0f);
  const Tensor b = MakeWindow(2.0f);
  const Tensor c = MakeWindow(3.0f);

  Tensor out;
  EXPECT_FALSE(cache.Lookup(a, &out));  // miss
  cache.Insert(a, Tensor::Full({2, 4}, 10.0f));
  cache.Insert(b, Tensor::Full({2, 4}, 20.0f));
  EXPECT_TRUE(cache.Lookup(a, &out));  // hit; also refreshes a to MRU
  EXPECT_EQ(out.Data()[0], 10.0f);

  cache.Insert(c, Tensor::Full({2, 4}, 30.0f));  // evicts b (LRU), not a
  EXPECT_TRUE(cache.Lookup(a, &out));
  EXPECT_FALSE(cache.Lookup(b, &out));
  EXPECT_TRUE(cache.Lookup(c, &out));
  EXPECT_EQ(out.Data()[0], 30.0f);

  const PredictionCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2);
}

TEST(PredictionCacheTest, KeyIsExactBytesNotHash) {
  // Same shape, different payload → different keys; same payload in a
  // different shape → different keys too.
  const Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  const Tensor b = Tensor::FromVector({2, 2}, {1, 2, 3, 5});
  const Tensor c = Tensor::FromVector({4, 1}, {1, 2, 3, 4});
  EXPECT_NE(PredictionCache::KeyOf(a), PredictionCache::KeyOf(b));
  EXPECT_NE(PredictionCache::KeyOf(a), PredictionCache::KeyOf(c));
  EXPECT_EQ(PredictionCache::KeyOf(a), PredictionCache::KeyOf(a));
}

TEST(PredictionCacheTest, ZeroCapacityDisablesWithoutAccounting) {
  PredictionCache cache(0);
  EXPECT_FALSE(cache.enabled());
  Tensor out;
  cache.Insert(MakeWindow(1.0f), Tensor::Full({2, 4}, 1.0f));
  EXPECT_FALSE(cache.Lookup(MakeWindow(1.0f), &out));
  const PredictionCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits + stats.misses + stats.entries, 0);
}

TEST(HttpParseTest, ParsesCompleteRequestAndReportsConsumed) {
  const std::string raw =
      "POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n"
      "abcdEXTRA";
  HttpRequest request;
  size_t consumed = 0;
  ASSERT_EQ(ParseHttpRequest(raw, 1 << 20, &request, &consumed),
            HttpParse::kOk);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/predict");
  EXPECT_EQ(request.body, "abcd");
  EXPECT_EQ(request.headers.at("host"), "x");  // names lower-cased
  EXPECT_EQ(consumed, raw.size() - 5);         // "EXTRA" stays buffered
}

TEST(HttpParseTest, IncompleteRequestNeedsMore) {
  HttpRequest request;
  size_t consumed = 0;
  EXPECT_EQ(ParseHttpRequest("POST /x HTTP/1.1\r\nContent-Le", 1 << 20,
                             &request, &consumed),
            HttpParse::kNeedMore);
  EXPECT_EQ(ParseHttpRequest(
                "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 1 << 20,
                &request, &consumed),
            HttpParse::kNeedMore);  // body not fully arrived
}

TEST(HttpParseTest, MalformedRequestsRejected) {
  HttpRequest request;
  size_t consumed = 0;
  EXPECT_EQ(ParseHttpRequest("garbage\r\n\r\n", 1 << 20, &request, &consumed),
            HttpParse::kBadRequest);
  EXPECT_EQ(ParseHttpRequest("GET /x SPDY/9\r\n\r\n", 1 << 20, &request,
                             &consumed),
            HttpParse::kBadRequest);
  EXPECT_EQ(ParseHttpRequest(
                "POST /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 1 << 20,
                &request, &consumed),
            HttpParse::kBadRequest);  // digits only — no strtoull wrap
  EXPECT_EQ(ParseHttpRequest(
                "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                1 << 20, &request, &consumed),
            HttpParse::kBadRequest);  // chunked unsupported
}

TEST(HttpParseTest, OversizedBodyIsPayloadTooLarge) {
  HttpRequest request;
  size_t consumed = 0;
  // The declared length alone must trigger 413 — before any body bytes
  // arrive, so a hostile client cannot make the server buffer them.
  EXPECT_EQ(ParseHttpRequest("POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n",
                             /*max_body_bytes=*/99, &request, &consumed),
            HttpParse::kPayloadTooLarge);
}

TEST(TraceparentTest, ParsesWellFormedHeader) {
  std::string trace_id;
  std::string parent;
  ASSERT_TRUE(ParseTraceparent(
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", &trace_id,
      &parent));
  EXPECT_EQ(trace_id, "0af7651916cd43dd8448eb211c80319c");
  EXPECT_EQ(parent, "b7ad6b7169203331");
}

TEST(TraceparentTest, RejectsMalformedHeaders) {
  std::string trace_id;
  std::string parent;
  const char* bad[] = {
      "",
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",       // short
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-x",  // long
      "00-0af7651916cd43dd8448eb211c80319g-b7ad6b7169203331-01",    // non-hex
      "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",    // upper
      "00-00000000000000000000000000000000-b7ad6b7169203331-01",    // zero
      "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",    // zero
      "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",    // ver ff
      "00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",    // sep
  };
  for (const char* header : bad) {
    EXPECT_FALSE(ParseTraceparent(header, &trace_id, &parent)) << header;
  }
}

TEST(TraceparentTest, ContextAdoptsValidHeaderAndReplacesInvalid) {
  const std::string valid =
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
  RequestContext adopted = MakeRequestContext(valid);
  EXPECT_TRUE(adopted.propagated);
  EXPECT_EQ(adopted.trace_id, "0af7651916cd43dd8448eb211c80319c");
  // Fresh span id for this hop, not the parent's.
  EXPECT_EQ(adopted.span_id.size(), 16u);
  EXPECT_NE(adopted.span_id, "b7ad6b7169203331");
  EXPECT_EQ(adopted.TraceparentHeader(),
            "00-0af7651916cd43dd8448eb211c80319c-" + adopted.span_id + "-01");

  RequestContext generated = MakeRequestContext("garbage header");
  EXPECT_FALSE(generated.propagated);
  EXPECT_EQ(generated.trace_id.size(), 32u);
  EXPECT_NE(generated.trace_id, std::string(32, '0'));
}

TEST(TraceparentTest, SeededGenerationIsDeterministic) {
  SeedTraceIds(12345);
  const RequestContext first = MakeRequestContext("");
  const RequestContext second = MakeRequestContext("");
  SeedTraceIds(12345);
  const RequestContext replay_first = MakeRequestContext("");
  const RequestContext replay_second = MakeRequestContext("");
  EXPECT_EQ(first.trace_id, replay_first.trace_id);
  EXPECT_EQ(first.span_id, replay_first.span_id);
  EXPECT_EQ(second.trace_id, replay_second.trace_id);
  EXPECT_NE(first.trace_id, second.trace_id);
}

// ---------------------------------------------------------------------------
// Access log.

RequestContext TestContext() {
  RequestContext context;
  context.trace_id = "0af7651916cd43dd8448eb211c80319c";
  context.span_id = "b7ad6b7169203331";
  for (int i = 0; i < kNumStages; ++i) {
    context.stage_us[static_cast<size_t>(i)] = 1.0;
  }
  return context;
}

AccessLog::Record TestRecord(const RequestContext& context, double total_us) {
  AccessLog::Record record;
  record.context = &context;
  record.method = "POST";
  record.path = "/v1/predict";
  record.status = 200;
  record.bytes = 42;
  record.total_us = total_us;
  record.cache_hit = false;
  record.batch_size = 1;
  return record;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(AccessLogTest, WritesOneJsonObjectPerRecord) {
  const std::string path = "/tmp/sthsl_access_log_test.jsonl";
  std::remove(path.c_str());
  AccessLog& log = AccessLog::Global();
  log.Configure(path, /*max_bytes=*/1 << 20, /*slow_threshold_us=*/0);
  ASSERT_TRUE(log.enabled());

  const RequestContext context = TestContext();
  log.Write(TestRecord(context, 50.0));
  log.Write(TestRecord(context, 60.0));
  log.Flush();

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  sthsl::json::JsonValue root;
  std::string error;
  ASSERT_TRUE(sthsl::json::JsonParser(lines[0]).Parse(&root, &error)) << error;
  EXPECT_EQ(root.FindOfKind("trace_id", sthsl::json::JsonValue::Kind::kString)
                ->text,
            context.trace_id);
  EXPECT_EQ(
      root.FindOfKind("status", sthsl::json::JsonValue::Kind::kNumber)->number,
      200.0);
  const sthsl::json::JsonValue* stages =
      root.FindOfKind("stages", sthsl::json::JsonValue::Kind::kObject);
  ASSERT_NE(stages, nullptr);
  EXPECT_EQ(stages->members.size(), static_cast<size_t>(kNumStages));
  EXPECT_EQ(lines[0].find("\"slow\""), std::string::npos);

  log.Configure("", 0, 0);  // disable for other tests
  std::remove(path.c_str());
}

TEST(AccessLogTest, RotatesWhenSizeCapIsExceeded) {
  const std::string path = "/tmp/sthsl_access_log_rotate.jsonl";
  const std::string rotated = path + ".1";
  std::remove(path.c_str());
  std::remove(rotated.c_str());
  AccessLog& log = AccessLog::Global();
  // Cap far below one record's size: every write after the first rotates.
  log.Configure(path, /*max_bytes=*/512, /*slow_threshold_us=*/0);

  const RequestContext context = TestContext();
  for (int i = 0; i < 6; ++i) log.Write(TestRecord(context, 50.0));
  log.Flush();

  // Both generations exist, each non-empty, each holding whole lines.
  EXPECT_FALSE(ReadLines(path).empty());
  const std::vector<std::string> old_lines = ReadLines(rotated);
  ASSERT_FALSE(old_lines.empty());
  EXPECT_EQ(old_lines.back().back(), '}');  // no torn record at the cut

  log.Configure("", 0, 0);
  std::remove(path.c_str());
  std::remove(rotated.c_str());
}

TEST(AccessLogTest, SlowRequestsAreMarked) {
  const std::string path = "/tmp/sthsl_access_log_slow.jsonl";
  std::remove(path.c_str());
  AccessLog& log = AccessLog::Global();
  log.Configure(path, 1 << 20, /*slow_threshold_us=*/100.0);

  const RequestContext context = TestContext();
  log.Write(TestRecord(context, 50.0));    // under threshold
  log.Write(TestRecord(context, 5000.0));  // over: marked slow
  log.Flush();

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].find("\"slow\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"slow\":true"), std::string::npos) << lines[1];

  log.Configure("", 0, 0);
  std::remove(path.c_str());
}

TEST(JsonEscapeTest, ControlCharactersEscaped) {
  EXPECT_EQ(sthsl::json::JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(sthsl::json::JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(sthsl::json::JsonEscape(std::string("nul\x01") + "\x1f"),
            "nul\\u0001\\u001f");
  EXPECT_EQ(sthsl::json::JsonQuote("x\ny"), "\"x\\ny\"");
}

// ---------------------------------------------------------------------------
// Bundle + end-to-end loopback.

struct TempDir {
  TempDir() : path("/tmp/sthsl_serve_test_bundle") {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

// Tiny trained model: 4x4 grid, 24 days, one abbreviated epoch.
LoadedBundle TrainAndRoundTripBundle(const std::string& dir) {
  CrimeGenConfig gen = NycSmallPreset();
  const double day_scale = 24.0 / static_cast<double>(gen.days);
  gen.rows = 4;
  gen.cols = 4;
  gen.days = 24;
  gen.seed = 11;
  for (auto& total : gen.category_totals) total *= day_scale;
  const CrimeDataset data = GenerateCrimeData(gen);

  SthslConfig config;
  config.dim = 4;
  config.num_hyperedges = 8;
  config.train.window = 7;
  config.train.epochs = 1;
  config.train.max_steps_per_epoch = 2;
  config.train.validation_days = 0;
  SthslForecaster model(config);
  model.Fit(data, data.num_days());

  BundleManifest provenance;
  provenance.city = data.city_name();
  provenance.category_names = data.category_names();
  provenance.generator_seed = static_cast<int64_t>(gen.seed);
  provenance.git_hash = "deadbeef";
  provenance.tool = "serve_test";
  EXPECT_TRUE(WriteBundle(model, dir, provenance).ok());

  auto loaded = LoadBundle(dir);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return std::move(loaded).value();
}

TEST(BundleTest, ManifestRoundTripPreservesIdentity) {
  TempDir dir;
  LoadedBundle bundle = TrainAndRoundTripBundle(dir.path);
  const BundleManifest& m = bundle.manifest;
  EXPECT_EQ(m.model, "ST-HSL");
  EXPECT_EQ(m.rows, 4);
  EXPECT_EQ(m.cols, 4);
  EXPECT_EQ(m.categories, 4);
  EXPECT_EQ(m.config.train.window, 7);
  EXPECT_EQ(m.generator_seed, 11);
  EXPECT_EQ(m.git_hash, "deadbeef");
  EXPECT_GT(m.stddev, 0.0f);
  EXPECT_EQ(m.WindowShape(), (std::vector<int64_t>{16, 7, 4}));
  ASSERT_EQ(m.category_names.size(), 4u);
}

TEST(BundleTest, MissingAndCorruptBundlesAreRejected) {
  EXPECT_FALSE(ReadManifest("/tmp/sthsl_no_such_bundle").ok());
  TempDir dir;
  std::filesystem::create_directories(dir.path);
  std::ofstream(dir.path + "/manifest.json") << "{\"bundle\": \"sthsl\"}";
  auto result = ReadManifest(dir.path);
  ASSERT_FALSE(result.ok());
  // The error names the first missing field instead of a generic failure.
  EXPECT_NE(result.status().message().find("schema"), std::string::npos)
      << result.status().message();
}

// Minimal blocking HTTP client for the loopback test.
std::string HttpRoundTrip(int port, const std::string& request_text,
                          int* status) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  size_t sent = 0;
  while (sent < request_text.size()) {
    const ssize_t n =
        ::send(fd, request_text.data() + sent, request_text.size() - sent, 0);
    if (n <= 0) {
      ADD_FAILURE() << "send failed";
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[16384];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
    const size_t header_end = response.find("\r\n\r\n");
    if (header_end == std::string::npos) continue;
    const size_t cl = response.find("Content-Length: ");
    if (cl == std::string::npos) continue;
    const size_t body_len = std::strtoul(response.c_str() + cl + 16, nullptr, 10);
    if (response.size() >= header_end + 4 + body_len) break;
  }
  ::close(fd);
  *status = 0;
  std::sscanf(response.c_str(), "HTTP/1.1 %d", status);
  const size_t header_end = response.find("\r\n\r\n");
  return header_end == std::string::npos ? ""
                                         : response.substr(header_end + 4);
}

std::string RenderPost(const std::string& target, const std::string& body) {
  return "POST " + target + " HTTP/1.1\r\nHost: t\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
}

// Like HttpRoundTrip but returns the raw response (status line + headers +
// body) so tests can inspect response headers such as `traceparent`.
std::string HttpRoundTripRaw(int port, const std::string& request_text) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  size_t sent = 0;
  while (sent < request_text.size()) {
    const ssize_t n =
        ::send(fd, request_text.data() + sent, request_text.size() - sent, 0);
    if (n <= 0) {
      ADD_FAILURE() << "send failed";
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[16384];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// The value of `header` ("name: value\r\n") in a raw response, or "".
std::string ResponseHeader(const std::string& raw, const std::string& name) {
  const size_t head_end = raw.find("\r\n\r\n");
  const std::string head =
      head_end == std::string::npos ? raw : raw.substr(0, head_end);
  const size_t at = head.find("\r\n" + name + ": ");
  if (at == std::string::npos) return "";
  const size_t begin = at + 2 + name.size() + 2;
  const size_t end = head.find("\r\n", begin);
  return head.substr(begin, end - begin);
}

// Extracts the "prediction" array text verbatim — string compare against the
// server's rendering of the direct result proves bitwise identity, because
// %.9g is injective on float32.
std::string PredictionArrayText(const std::string& body) {
  const size_t start = body.find("\"prediction\": [");
  EXPECT_NE(start, std::string::npos) << body;
  const size_t end = body.find(']', start);
  EXPECT_NE(end, std::string::npos);
  return body.substr(start, end - start + 1);
}

std::string RenderFloats(const std::vector<float>& values) {
  std::string text = "\"prediction\": [";
  char buf[40];
  for (size_t i = 0; i < values.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%.9g", static_cast<double>(values[i]));
    text += (i == 0 ? "" : ", ") + std::string(buf);
  }
  return text + "]";
}

TEST(ServeLoopbackTest, EndToEndMatchesDirectPredictBitwise) {
  TempDir dir;
  LoadedBundle serving = TrainAndRoundTripBundle(dir.path);
  LoadedBundle direct = LoadBundle(dir.path).value();  // independent instance

  EngineConfig config;
  config.batcher.worker_threads = 2;
  config.batcher.max_wait_us = 500;
  InferenceEngine engine(std::move(serving), config);
  PredictService service(&engine);
  HttpServer server;
  service.Register(&server);
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());
  ASSERT_GT(server.port(), 0);

  // Build a deterministic window and the direct (ground-truth) prediction.
  const std::vector<int64_t> shape = engine.manifest().WindowShape();
  int64_t numel = 1;
  for (int64_t extent : shape) numel *= extent;
  std::vector<float> window(static_cast<size_t>(numel));
  for (size_t i = 0; i < window.size(); ++i) {
    window[i] = static_cast<float>(i % 5);
  }
  const Tensor direct_out =
      direct.model->PredictWindows({Tensor::FromVector(shape, window)})
          .front();
  const std::string expected = RenderFloats(direct_out.Data());

  std::string body = "{\"window\": [";
  for (size_t i = 0; i < window.size(); ++i) {
    body += (i == 0 ? "" : ",") + std::to_string(static_cast<int>(window[i]));
  }
  body += "]}";

  // Cold request: batched forward path, cache miss.
  int status = 0;
  std::string cold =
      HttpRoundTrip(server.port(), RenderPost("/v1/predict", body), &status);
  ASSERT_EQ(status, 200) << cold;
  EXPECT_NE(cold.find("\"cache_hit\": false"), std::string::npos) << cold;
  EXPECT_EQ(PredictionArrayText(cold), expected);

  // Warm request: identical window must be a cache hit, same exact bytes.
  std::string warm =
      HttpRoundTrip(server.port(), RenderPost("/v1/predict", body), &status);
  ASSERT_EQ(status, 200) << warm;
  EXPECT_NE(warm.find("\"cache_hit\": true"), std::string::npos) << warm;
  EXPECT_EQ(PredictionArrayText(warm), expected);

  // Bad inputs come back as client errors, never aborts.
  std::string bad = HttpRoundTrip(
      server.port(), RenderPost("/v1/predict", "{\"window\": [1,2]}"),
      &status);
  EXPECT_EQ(status, 400) << bad;
  bad = HttpRoundTrip(server.port(), RenderPost("/v1/predict", "not json"),
                      &status);
  EXPECT_EQ(status, 400) << bad;
  bad = HttpRoundTrip(
      server.port(),
      RenderPost("/v1/predict",
                 "{\"window\": [1], \"shape\": [-3, 9999999999999]}"),
      &status);
  EXPECT_EQ(status, 400) << bad;

  // Routing: wrong path → 404, wrong method on a known path → 405.
  HttpRoundTrip(server.port(), RenderPost("/nope", "{}"), &status);
  EXPECT_EQ(status, 404);
  HttpRoundTrip(server.port(),
                "GET /v1/predict HTTP/1.1\r\nHost: t\r\n"
                "Connection: close\r\n\r\n",
                &status);
  EXPECT_EQ(status, 405);

  // Health and metrics endpoints respond with the bundle identity and the
  // cache/batcher counters this test just exercised.
  std::string health = HttpRoundTrip(server.port(),
                                     "GET /healthz HTTP/1.1\r\nHost: t\r\n"
                                     "Connection: close\r\n\r\n",
                                     &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(health.find("\"model\": \"ST-HSL\""), std::string::npos) << health;
  std::string metrics = HttpRoundTrip(server.port(),
                                      "GET /metrics HTTP/1.1\r\nHost: t\r\n"
                                      "Connection: close\r\n\r\n",
                                      &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(metrics.find("\"cache\""), std::string::npos);
  EXPECT_NE(metrics.find("\"batcher\""), std::string::npos);
  // Scrapes refresh and embed the execution-pool telemetry.
  EXPECT_NE(metrics.find("\"exec\""), std::string::npos);
  EXPECT_NE(metrics.find("\"exec/threads\""), std::string::npos);
  std::string statusz = HttpRoundTrip(server.port(),
                                      "GET /statusz HTTP/1.1\r\nHost: t\r\n"
                                      "Connection: close\r\n\r\n",
                                      &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(statusz.find("\"exec\""), std::string::npos);
  EXPECT_NE(statusz.find("\"chunks_executed\""), std::string::npos);
  // The selected SIMD microkernel set and detected CPU features are part of
  // the serving provenance surface.
  EXPECT_NE(statusz.find("\"simd\""), std::string::npos);
  EXPECT_NE(statusz.find("\"kernels\""), std::string::npos);
  EXPECT_NE(statusz.find("\"cpu_features\""), std::string::npos);

  server.Drain();
  engine.Shutdown();
}

TEST(ServeLoopbackTest, TraceparentRoundTripAndAccessLogExactlyOnce) {
  const std::string log_path = "/tmp/sthsl_serve_access_e2e.jsonl";
  std::remove(log_path.c_str());
  AccessLog::Global().Configure(log_path, 1 << 20, 0);

  TempDir dir;
  LoadedBundle bundle = TrainAndRoundTripBundle(dir.path);
  EngineConfig config;
  config.batcher.worker_threads = 1;
  config.batcher.max_wait_us = 500;
  InferenceEngine engine(std::move(bundle), config);
  PredictService service(&engine);
  HttpServer server;
  service.Register(&server);
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());

  const std::vector<int64_t> shape = engine.manifest().WindowShape();
  int64_t numel = 1;
  for (int64_t extent : shape) numel *= extent;
  std::string body = "{\"window\": [";
  for (int64_t i = 0; i < numel; ++i) {
    body += (i == 0 ? "" : ",") + std::to_string(i % 3);
  }
  body += "]}";

  // 1. Client-sent traceparent comes back with the same trace id (and the
  //    trace id appears in the JSON body).
  const std::string client_trace = "4bf92f3577b34da6a3ce929d0e0e4736";
  const std::string sent = "00-" + client_trace + "-00f067aa0ba902b7-01";
  std::string raw = HttpRoundTripRaw(
      server.port(),
      "POST /v1/predict HTTP/1.1\r\nHost: t\r\ntraceparent: " + sent +
          "\r\nContent-Length: " + std::to_string(body.size()) +
          "\r\nConnection: close\r\n\r\n" + body);
  EXPECT_NE(raw.find("HTTP/1.1 200"), std::string::npos) << raw;
  std::string echoed = ResponseHeader(raw, "traceparent");
  ASSERT_EQ(echoed.size(), 55u) << raw;
  EXPECT_EQ(echoed.substr(3, 32), client_trace);
  EXPECT_NE(echoed.substr(36, 16), "00f067aa0ba902b7");  // fresh span id
  EXPECT_NE(raw.find("\"trace_id\": \"" + client_trace + "\""),
            std::string::npos);

  // 2. A malformed traceparent is rejected: the response carries a freshly
  //    generated trace id instead of echoing the bad one.
  raw = HttpRoundTripRaw(
      server.port(),
      "POST /v1/predict HTTP/1.1\r\nHost: t\r\ntraceparent: bogus\r\n"
      "Content-Length: " +
          std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" +
          body);
  EXPECT_NE(raw.find("HTTP/1.1 200"), std::string::npos) << raw;
  echoed = ResponseHeader(raw, "traceparent");
  ASSERT_EQ(echoed.size(), 55u);
  EXPECT_NE(echoed.substr(3, 32), client_trace);
  EXPECT_NE(echoed.substr(3, 32), std::string(32, '0'));

  // 3. Non-predict and error responses also echo a traceparent.
  raw = HttpRoundTripRaw(server.port(),
                         "GET /healthz HTTP/1.1\r\nHost: t\r\n"
                         "Connection: close\r\n\r\n");
  EXPECT_EQ(ResponseHeader(raw, "traceparent").size(), 55u);
  raw = HttpRoundTripRaw(server.port(),
                         "GET /nope HTTP/1.1\r\nHost: t\r\n"
                         "Connection: close\r\n\r\n");
  EXPECT_NE(raw.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_EQ(ResponseHeader(raw, "traceparent").size(), 55u);

  server.Drain();
  engine.Shutdown();
  AccessLog::Global().Flush();

  // Exactly one record per request, in order; predict records carry the
  // stage map, cache/batch detail, and stage sums bounded by total_us.
  const std::vector<std::string> lines = ReadLines(log_path);
  ASSERT_EQ(lines.size(), 4u);
  sthsl::json::JsonValue record;
  std::string error;
  ASSERT_TRUE(sthsl::json::JsonParser(lines[0]).Parse(&record, &error))
      << error;
  EXPECT_EQ(
      record.FindOfKind("trace_id", sthsl::json::JsonValue::Kind::kString)
          ->text,
      client_trace);
  EXPECT_EQ(record.FindOfKind("path", sthsl::json::JsonValue::Kind::kString)
                ->text,
            "/v1/predict");
  const sthsl::json::JsonValue* stages =
      record.FindOfKind("stages", sthsl::json::JsonValue::Kind::kObject);
  ASSERT_NE(stages, nullptr);
  double stage_sum = 0.0;
  for (const auto& [stage_name, value] : stages->members) {
    ASSERT_TRUE(value.Is(sthsl::json::JsonValue::Kind::kNumber)) << stage_name;
    EXPECT_GE(value.number, 0.0) << stage_name;
    stage_sum += value.number;
  }
  const double total_us =
      record.FindOfKind("total_us", sthsl::json::JsonValue::Kind::kNumber)
          ->number;
  EXPECT_LE(stage_sum, total_us);
  ASSERT_NE(record.Find("batch_size"), nullptr);
  ASSERT_NE(record.Find("cache_hit"), nullptr);
  // The 404 record has no predict detail but all required fields.
  sthsl::json::JsonValue not_found;
  ASSERT_TRUE(sthsl::json::JsonParser(lines[3]).Parse(&not_found, &error));
  EXPECT_EQ(not_found.FindOfKind("status",
                                 sthsl::json::JsonValue::Kind::kNumber)
                ->number,
            404.0);
  EXPECT_EQ(not_found.Find("batch_size"), nullptr);

  AccessLog::Global().Configure("", 0, 0);
  std::remove(log_path.c_str());
}

TEST(ServeLoopbackTest, ConcurrentRequestsAllAnswered) {
  TempDir dir;
  LoadedBundle bundle = TrainAndRoundTripBundle(dir.path);
  EngineConfig config;
  config.batcher.max_batch_size = 4;
  config.batcher.max_wait_us = 1000;
  config.batcher.worker_threads = 2;
  config.cache_entries = 0;  // force every request through the batcher
  InferenceEngine engine(std::move(bundle), config);

  const std::vector<int64_t> shape = engine.manifest().WindowShape();
  int64_t numel = 1;
  for (int64_t extent : shape) numel *= extent;

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&, t] {
      std::vector<float> window(static_cast<size_t>(numel),
                                static_cast<float>(t % 3));
      for (int i = 0; i < 4; ++i) {
        auto result = engine.Predict(Tensor::FromVector(shape, window));
        if (!result.ok() || !result.value().values.Defined()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  const MicroBatcher::Stats stats = engine.batcher_stats();
  EXPECT_EQ(stats.requests, 32);
  EXPECT_GT(stats.batches, 0);
  engine.Shutdown();
}

}  // namespace
}  // namespace sthsl::serve
