// Tests for the perf_event hardware-counter group: the STHSL_PERF_DISABLE
// fallback must be a clean no-op, and when counters are available a counted
// region must report coherent, monotone readings. The tests never assume the
// syscall works — CI containers routinely mask perf_event_open.

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "util/obs/perf_counters.h"

namespace sthsl {
namespace {

/// Sets STHSL_PERF_DISABLE for the scope and restores the prior value.
class PerfDisableGuard {
 public:
  explicit PerfDisableGuard(const char* value) {
    const char* prev = std::getenv("STHSL_PERF_DISABLE");
    had_previous_ = prev != nullptr;
    if (had_previous_) previous_ = prev;
    if (value != nullptr) {
      setenv("STHSL_PERF_DISABLE", value, 1);
    } else {
      unsetenv("STHSL_PERF_DISABLE");
    }
  }
  ~PerfDisableGuard() {
    if (had_previous_) {
      setenv("STHSL_PERF_DISABLE", previous_.c_str(), 1);
    } else {
      unsetenv("STHSL_PERF_DISABLE");
    }
  }

  PerfDisableGuard(const PerfDisableGuard&) = delete;
  PerfDisableGuard& operator=(const PerfDisableGuard&) = delete;

 private:
  bool had_previous_ = false;
  std::string previous_;
};

TEST(PerfCountersTest, DisabledEnvForcesCleanFallback) {
  PerfDisableGuard guard("1");
  obs::HwCounterGroup group;
  EXPECT_FALSE(group.available());
  EXPECT_FALSE(obs::HwCounterGroup::SupportedOnThisSystem());
  // The whole lifecycle must be a no-op, not a crash.
  group.Start();
  const obs::HwCounterSample sample = group.Stop();
  EXPECT_FALSE(sample.valid);
  EXPECT_EQ(sample.cycles, 0);
  EXPECT_EQ(sample.instructions, 0);
}

TEST(PerfCountersTest, ExplicitZeroDoesNotDisable) {
  PerfDisableGuard guard("0");
  // "0" must behave like unset: availability equals what the kernel allows.
  obs::HwCounterGroup group;
  EXPECT_EQ(group.available(), obs::HwCounterGroup::SupportedOnThisSystem());
}

TEST(PerfCountersTest, LifecycleNeverCrashesRegardlessOfSupport) {
  obs::HwCounterGroup group;
  group.Start();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const obs::HwCounterSample sample = group.Stop();
  EXPECT_EQ(sample.valid, group.available());
  if (sample.valid) {
    // Counters that opened must have counted the loop; failed siblings are
    // allowed to read -1 but never garbage-negative values below that.
    EXPECT_GT(sample.cycles, 0);
    EXPECT_GE(sample.instructions, -1);
    EXPECT_GE(sample.l1d_misses, -1);
    EXPECT_GE(sample.llc_misses, -1);
    EXPECT_GE(sample.branch_misses, -1);
  }
}

TEST(PerfCountersTest, StopWithoutStartIsSafe) {
  obs::HwCounterGroup group;
  const obs::HwCounterSample sample = group.Stop();
  EXPECT_EQ(sample.valid, group.available());
}

}  // namespace
}  // namespace sthsl
