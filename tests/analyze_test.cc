#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/baseline.h"
#include "analyze/concurrency.h"
#include "analyze/determinism.h"
#include "analyze/headers.h"
#include "analyze/include_graph.h"
#include "analyze/lexer.h"
#include "analyze/token_util.h"

namespace sthsl::analyze {
namespace {

std::vector<std::string> RuleIds(const std::vector<Finding>& findings) {
  std::vector<std::string> ids;
  for (const Finding& f : findings) ids.push_back(f.rule);
  return ids;
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  const auto ids = RuleIds(findings);
  return std::find(ids.begin(), ids.end(), rule) != ids.end();
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  const auto ids = RuleIds(findings);
  return static_cast<int>(std::count(ids.begin(), ids.end(), rule));
}

// ---------------------------------------------------------------- lexer --

TEST(LexerTest, IdentifiersNumbersAndPunct) {
  const auto tokens = Lex("int x = a->b + 1'000 * 0x1fULL;");
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_TRUE(tokens[0].IsIdent("int"));
  EXPECT_TRUE(tokens[1].IsIdent("x"));
  EXPECT_TRUE(tokens[2].IsPunct("="));
  EXPECT_TRUE(tokens[3].IsIdent("a"));
  EXPECT_TRUE(tokens[4].IsPunct("->"));
  EXPECT_TRUE(tokens[5].IsIdent("b"));
  EXPECT_TRUE(tokens[6].IsPunct("+"));
  EXPECT_TRUE(tokens[7].Is(TokenKind::kNumber, "1'000"));
  EXPECT_TRUE(tokens[8].IsPunct("*"));
  EXPECT_TRUE(tokens[9].Is(TokenKind::kNumber, "0x1fULL"));
}

TEST(LexerTest, CommentsAreConsumed) {
  const auto tokens = Lex(
      "a // line comment with std::thread\n"
      "b /* block with rand() */ c\n"
      "/* multi\n   line */ d");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_TRUE(tokens[0].IsIdent("a"));
  EXPECT_TRUE(tokens[1].IsIdent("b"));
  EXPECT_TRUE(tokens[2].IsIdent("c"));
  EXPECT_TRUE(tokens[3].IsIdent("d"));
  EXPECT_EQ(tokens[3].line, 4);
}

TEST(LexerTest, StringAndCharLiterals) {
  const auto tokens = Lex(R"(x = "str with \" and const_cast"; c = 'y';)");
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
  EXPECT_EQ(tokens[2].text, "str with \\\" and const_cast");
  EXPECT_EQ(tokens[6].kind, TokenKind::kChar);
  EXPECT_EQ(tokens[6].text, "y");
}

TEST(LexerTest, RawStrings) {
  const auto tokens =
      Lex("auto s = R\"tag(body with \"quotes\" and )\" inside)tag\"; b");
  ASSERT_GE(tokens.size(), 5u);
  EXPECT_EQ(tokens[3].kind, TokenKind::kString);
  EXPECT_EQ(tokens[3].text, "body with \"quotes\" and )\" inside");
  EXPECT_TRUE(tokens[4].IsPunct(";"));
  // Prefixed raw strings lex the same way.
  const auto prefixed = Lex("u8R\"(x)\" LR\"(y)\"");
  ASSERT_EQ(prefixed.size(), 2u);
  EXPECT_EQ(prefixed[0].text, "x");
  EXPECT_EQ(prefixed[1].text, "y");
}

TEST(LexerTest, RawStringBodyIgnoresLineContinuation) {
  // Inside a raw string a trailing backslash is two literal characters,
  // not a splice.
  const auto tokens = Lex("auto s = R\"(line\\\nnext)\";");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens[3].text, "line\\\nnext");
}

TEST(LexerTest, LineContinuations) {
  // The identifier is spliced across the physical lines.
  const auto tokens = Lex("con\\\ntinued = 1;\nnext");
  ASSERT_GE(tokens.size(), 5u);
  EXPECT_TRUE(tokens[0].IsIdent("continued"));
  EXPECT_EQ(tokens[0].line, 1);
  // Tokens after the splice land on the correct physical line.
  EXPECT_TRUE(tokens[4].IsIdent("next"));
  EXPECT_EQ(tokens[4].line, 3);
}

TEST(LexerTest, ContinuedLineCommentSwallowsNextLine) {
  const auto tokens = Lex("// comment continues \\\nstd::thread t;\nafter");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].IsIdent("after"));
}

TEST(LexerTest, CommentSpanningMacroDefinition) {
  const auto tokens = Lex(
      "#define BAD(x) /* hides\n"
      "   #define INNER const_cast\n"
      "*/ x\n"
      "BAD(1)");
  // The block comment swallows the fake inner directive; what remains is
  // the real define, its params, the body, and the use.
  ASSERT_GE(tokens.size(), 7u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kDirective);
  EXPECT_EQ(tokens[0].text, "define");
  for (const Token& t : tokens) EXPECT_NE(t.text, "const_cast");
}

TEST(LexerTest, IncludeDirectives) {
  const auto tokens = Lex(
      "#include <vector>\n"
      "#include \"tensor/ops.h\"\n"
      "#  include <cmath>\n");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kDirective);
  EXPECT_EQ(tokens[1].kind, TokenKind::kHeaderName);
  EXPECT_EQ(tokens[1].text, "vector");
  EXPECT_EQ(tokens[3].kind, TokenKind::kString);
  EXPECT_EQ(tokens[3].text, "tensor/ops.h");
  EXPECT_EQ(tokens[5].text, "cmath");
}

TEST(LexerTest, DirectiveOnlyAtLineStart) {
  const auto tokens = Lex("int a = b # c;");
  // Mid-line '#' is plain punctuation, not a directive.
  EXPECT_TRUE(std::any_of(tokens.begin(), tokens.end(), [](const Token& t) {
    return t.kind == TokenKind::kPunct && t.text == "#";
  }));
}

// ----------------------------------------------------------- token utils --

TEST(TokenUtilTest, FindsFunctionBodiesNotClassBodies) {
  const auto tokens = Lex(
      "struct S { int x; void F() { x = 1; } };\n"
      "int G(int a) { return a; }\n"
      "std::vector<int> v = {1, 2};\n");
  const auto bodies = FindFunctionBodies(tokens);
  ASSERT_EQ(bodies.size(), 2u);  // F and G; not S's body, not v's init
}

TEST(TokenUtilTest, LockSites) {
  const auto tokens = Lex(
      "void F() {\n"
      "  std::lock_guard<std::mutex> l(pool.mu);\n"
      "  std::scoped_lock both(a_mu_, b_mu_);\n"
      "  std::unique_lock lk(region->done_mu);\n"
      "}\n");
  const auto sites = FindLockSites(tokens, 0, tokens.size());
  ASSERT_EQ(sites.size(), 3u);
  EXPECT_EQ(sites[0].mutexes, std::vector<std::string>{"mu"});
  EXPECT_EQ(sites[1].mutexes, (std::vector<std::string>{"a_mu_", "b_mu_"}));
  EXPECT_EQ(sites[2].mutexes, std::vector<std::string>{"done_mu"});
}

// -------------------------------------------------------------- layering --

TEST(LayeringTest, FlagsUpwardInclude) {
  const std::vector<SourceFile> files = {
      {"src/tensor/bad.cc", "#include \"serve/http.h\"\n"}};
  const auto findings = RunLayeringPass(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layer-dag");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("serve/http.h"), std::string::npos);
  EXPECT_NE(findings[0].message.find("util, exec, simd, sparse, tensor"),
            std::string::npos);
}

TEST(LayeringTest, SimdSitsBetweenExecAndTensor) {
  // simd may reach util and exec; tensor may reach simd; the reverse
  // directions are layering errors.
  const std::vector<SourceFile> ok = {
      {"src/simd/dispatch.cc", "#include \"exec/exec.h\"\n"},
      {"src/simd/avx2.cc", "#include \"simd/simd.h\"\n"},
      {"src/tensor/matmul.cc", "#include \"simd/simd.h\"\n"}};
  EXPECT_TRUE(RunLayeringPass(ok).empty());
  const std::vector<SourceFile> bad = {
      {"src/simd/bad.cc", "#include \"tensor/tensor.h\"\n"},
      {"src/exec/bad.cc", "#include \"simd/simd.h\"\n"}};
  const auto findings = RunLayeringPass(bad);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "layer-dag");
  EXPECT_EQ(findings[1].rule, "layer-dag");
}

TEST(LayeringTest, AcceptsDownwardAndSameLayerIncludes) {
  const std::vector<SourceFile> files = {
      {"src/serve/engine.cc",
       "#include \"core/forecaster.h\"\n#include \"serve/cache.h\"\n"
       "#include \"util/check.h\"\n"},
      {"src/nn/layers.cc", "#include \"metrics/metrics.h\"\n"}};
  EXPECT_TRUE(RunLayeringPass(files).empty());
}

TEST(LayeringTest, SparseSitsBetweenExecAndTensor) {
  // tensor may reach down into sparse, sparse down into exec...
  const std::vector<SourceFile> ok = {
      {"src/tensor/sparse_ops.cc", "#include \"sparse/kernels.h\"\n"},
      {"src/sparse/kernels.cc", "#include \"exec/exec.h\"\n"}};
  EXPECT_TRUE(RunLayeringPass(ok).empty());
  // ...but sparse must never include upward into tensor.
  const std::vector<SourceFile> bad = {
      {"src/sparse/bad.cc", "#include \"tensor/tensor.h\"\n"}};
  const auto findings = RunLayeringPass(bad);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layer-dag");
}

TEST(LayeringTest, CoreMustNotIncludeBaselines) {
  const std::vector<SourceFile> files = {
      {"src/core/model.cc", "#include \"baselines/registry.h\"\n"}};
  const auto findings = RunLayeringPass(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layer-dag");
}

TEST(LayeringTest, DetectsIncludeCycle) {
  const std::vector<SourceFile> files = {
      {"src/util/a.h", "#include \"util/b.h\"\n"},
      {"src/util/b.h", "#include \"util/c.h\"\n"},
      {"src/util/c.h", "#include \"util/a.h\"\n"}};
  const auto findings = RunLayeringPass(files);
  ASSERT_EQ(CountRule(findings, "include-cycle"), 1);
  const auto it = std::find_if(findings.begin(), findings.end(),
                               [](const Finding& f) {
                                 return f.rule == "include-cycle";
                               });
  EXPECT_NE(it->message.find("util/a.h"), std::string::npos);
  EXPECT_NE(it->message.find("util/c.h"), std::string::npos);
}

TEST(LayeringTest, FlagsUnknownLayer) {
  const std::vector<SourceFile> files = {{"src/wild/new_code.cc", "int x;\n"}};
  const auto findings = RunLayeringPass(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unknown-layer");
}

TEST(LayeringTest, IncludesInCommentsAndStringsIgnored) {
  const std::vector<SourceFile> files = {
      {"src/tensor/ok.cc",
       "// #include \"serve/http.h\"\n"
       "const char* s = \"#include \\\"serve/http.h\\\"\";\n"}};
  EXPECT_TRUE(RunLayeringPass(files).empty());
}

// ----------------------------------------------------------- determinism --

TEST(DeterminismTest, FlagsRawThreadingOutsideExecAndServe) {
  const std::vector<SourceFile> files = {
      {"src/tensor/bad.cc",
       "#include <thread>\nvoid F() { std::thread t([]{}); t.detach(); }\n"},
      {"src/util/bad_async.cc", "auto f = std::async([]{});\n"},
      {"src/data/bad_omp.cc", "#pragma omp parallel for\nvoid G();\n"}};
  const auto findings = RunDeterminismPass(files);
  EXPECT_EQ(CountRule(findings, "det-thread"), 4);  // thread, detach, async, omp
}

TEST(DeterminismTest, AllowsThreadingInExecAndServe) {
  const std::vector<SourceFile> files = {
      {"src/exec/pool.cc", "std::thread worker(Loop);\n"},
      {"src/serve/http.cc", "accept_thread_ = std::thread([]{});\n"}};
  EXPECT_TRUE(RunDeterminismPass(files).empty());
}

TEST(DeterminismTest, FlagsRandAndClockInKernels) {
  const std::vector<SourceFile> files = {
      {"src/nn/bad.cc",
       "int a = rand();\nstd::random_device rd;\n"
       "auto t0 = time(nullptr);\n"
       "auto now = std::chrono::system_clock::now();\n"}};
  const auto findings = RunDeterminismPass(files);
  EXPECT_EQ(CountRule(findings, "det-rand"), 2);
  EXPECT_EQ(CountRule(findings, "det-time"), 2);
}

TEST(DeterminismTest, MemberCallsAndStringsDoNotTrip) {
  const std::vector<SourceFile> files = {
      {"src/core/ok.cc",
       "double s = timer.time();\n"            // member access, not libc
       "const char* m = \"rand() is bad\";\n"  // string literal
       "// time(nullptr) in a comment\n"}};
  EXPECT_TRUE(RunDeterminismPass(files).empty());
}

TEST(DeterminismTest, FlagsUnorderedIterationWithFloatAccumulation) {
  const std::vector<SourceFile> files = {
      {"src/tensor/bad.cc",
       "#include <unordered_map>\n"
       "float Sum(const std::unordered_map<int, float>& m) {\n"
       "  float total = 0;\n"
       "  for (const auto& [k, v] : m) total += v;\n"
       "  return total;\n"
       "}\n"}};
  const auto findings = RunDeterminismPass(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "det-unordered-iter");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(DeterminismTest, OrderedIterationAndLookupsAreFine) {
  const std::vector<SourceFile> files = {
      {"src/tensor/ok.cc",
       "#include <map>\n#include <unordered_map>\n"
       "float F(const std::map<int, float>& m,\n"
       "        const std::unordered_map<int, float>& u) {\n"
       "  float total = 0;\n"
       "  for (const auto& [k, v] : m) total += v;\n"  // ordered: fine
       "  auto it = u.find(3);\n"                      // lookup: fine
       "  for (const auto& [k, v] : u) { Use(k); }\n"  // no accumulation
       "  return total;\n"
       "}\n"}};
  EXPECT_TRUE(RunDeterminismPass(files).empty());
}

TEST(DeterminismTest, FlagsIntrinsicHeadersOutsideSimd) {
  const std::vector<SourceFile> files = {
      {"src/tensor/bad.cc", "#include <immintrin.h>\nvoid F();\n"},
      {"src/nn/bad_neon.cc", "#include <arm_neon.h>\n"},
      {"src/exec/bad_sse.cc", "#include <emmintrin.h>\n"}};
  const auto findings = RunDeterminismPass(files);
  EXPECT_EQ(CountRule(findings, "det-intrinsics"), 3);
}

TEST(DeterminismTest, AllowsIntrinsicHeadersInSimd) {
  const std::vector<SourceFile> files = {
      {"src/simd/avx2.cc", "#include <immintrin.h>\n"},
      {"src/simd/neon.cc", "#include <arm_neon.h>\n"}};
  EXPECT_TRUE(RunDeterminismPass(files).empty());
}

TEST(DeterminismTest, QuotedOrCommentedIntrinsicIncludesDoNotTrip) {
  const std::vector<SourceFile> files = {
      {"src/tensor/ok.cc",
       "// #include <immintrin.h>\n"
       "const char* s = \"#include <immintrin.h>\";\n"
       "#include \"simd/simd.h\"\n"}};
  EXPECT_TRUE(RunDeterminismPass(files).empty());
}

// ----------------------------------------------------------- concurrency --

TEST(ConcurrencyTest, FlagsUnguardedFieldTouch) {
  const std::vector<SourceFile> files = {
      {"src/serve/q.cc",
       "struct Q {\n"
       "  std::mutex item_mu_;\n"
       "  std::vector<int> item_list_;\n"
       "  void Bad() { item_list_.clear(); }\n"
       "  void Good() {\n"
       "    std::lock_guard<std::mutex> l(item_mu_);\n"
       "    item_list_.clear();\n"
       "  }\n"
       "};\n"}};
  const auto findings = RunConcurrencyPass(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "guarded-field");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(ConcurrencyTest, HeaderConventionAppliesToPairedCc) {
  const std::vector<SourceFile> files = {
      {"src/serve/q.h",
       "#ifndef STHSL_SERVE_Q_H_\n#define STHSL_SERVE_Q_H_\n"
       "#include <mutex>\n#include <vector>\n"
       "struct Q {\n  std::mutex item_mu_;\n  std::vector<int> item_list_;\n"
       "  void Bad();\n};\n#endif  // STHSL_SERVE_Q_H_\n"},
      {"src/serve/q.cc",
       "#include \"serve/q.h\"\nvoid Q::Bad() { item_list_.clear(); }\n"}};
  const auto findings = RunConcurrencyPass(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "src/serve/q.cc");
  EXPECT_EQ(findings[0].rule, "guarded-field");
}

TEST(ConcurrencyTest, FlagsManualLocking) {
  const std::vector<SourceFile> files = {
      {"src/util/m.cc",
       "struct M { std::mutex work_mu_; };\n"
       "void F(M& m) { m.work_mu_.lock(); m.work_mu_.unlock(); }\n"}};
  const auto findings = RunConcurrencyPass(files);
  EXPECT_EQ(CountRule(findings, "mutex-guard"), 2);
}

TEST(ConcurrencyTest, BareMuIsExemptFromConvention) {
  const std::vector<SourceFile> files = {
      {"src/util/m.cc",
       "struct M { std::mutex mu; int value; };\n"
       "void F(M& m) { m.mu.lock(); m.value = 1; m.mu.unlock(); }\n"}};
  EXPECT_TRUE(RunConcurrencyPass(files).empty());
}

TEST(ConcurrencyTest, FlagsLockOrderInversion) {
  const std::vector<SourceFile> files = {
      {"src/serve/l.cc",
       "struct L { std::mutex a_mu; std::mutex b_mu; };\n"
       "void AB(L& l) {\n"
       "  std::lock_guard<std::mutex> a(l.a_mu);\n"
       "  std::lock_guard<std::mutex> b(l.b_mu);\n"
       "}\n"
       "void BA(L& l) {\n"
       "  std::lock_guard<std::mutex> b(l.b_mu);\n"
       "  std::lock_guard<std::mutex> a(l.a_mu);\n"
       "}\n"}};
  const auto findings = RunConcurrencyPass(files);
  EXPECT_EQ(CountRule(findings, "lock-order"), 1);
}

TEST(ConcurrencyTest, ScopedNestingDoesNotInvert) {
  // The inner lock is released before the second function locks in the
  // other order — but lexically the first function's nesting ends with its
  // scope, so sequential (non-nested) locks never pair.
  const std::vector<SourceFile> files = {
      {"src/serve/l.cc",
       "struct L { std::mutex a_mu; std::mutex b_mu; };\n"
       "void F(L& l) {\n"
       "  { std::lock_guard<std::mutex> a(l.a_mu); }\n"
       "  { std::lock_guard<std::mutex> b(l.b_mu); }\n"
       "}\n"
       "void G(L& l) {\n"
       "  { std::lock_guard<std::mutex> b(l.b_mu); }\n"
       "  { std::lock_guard<std::mutex> a(l.a_mu); }\n"
       "}\n"}};
  EXPECT_TRUE(RunConcurrencyPass(files).empty());
}

TEST(ConcurrencyTest, ScopedLockMultiArgDoesNotSelfPair) {
  const std::vector<SourceFile> files = {
      {"src/serve/l.cc",
       "struct L { std::mutex a_mu; std::mutex b_mu; };\n"
       "void F(L& l) { std::scoped_lock both(l.a_mu, l.b_mu); }\n"
       "void G(L& l) { std::scoped_lock both(l.b_mu, l.a_mu); }\n"}};
  EXPECT_TRUE(RunConcurrencyPass(files).empty());
}

// --------------------------------------------------------------- headers --

TEST(HeaderTest, ExpectedGuardDerivation) {
  EXPECT_EQ(ExpectedGuard("tensor/ops.h"), "STHSL_TENSOR_OPS_H_");
  EXPECT_EQ(ExpectedGuard("util/obs/run_ledger.h"),
            "STHSL_UTIL_OBS_RUN_LEDGER_H_");
}

TEST(HeaderTest, GuardChecks) {
  const std::vector<SourceFile> files = {
      {"src/util/good.h",
       "#ifndef STHSL_UTIL_GOOD_H_\n#define STHSL_UTIL_GOOD_H_\n"
       "#endif  // STHSL_UTIL_GOOD_H_\n"},
      {"src/util/wrong.h",
       "#ifndef WRONG_H\n#define WRONG_H\n#endif\n"},
      {"src/util/missing_define.h",
       "#ifndef STHSL_UTIL_MISSING_DEFINE_H_\n#include <vector>\n#endif\n"},
      {"src/util/none.h", "int x;\n"}};
  const auto findings = RunHeaderPass(files);
  EXPECT_EQ(CountRule(findings, "include-guard"), 3);
  for (const Finding& f : findings) EXPECT_NE(f.path, "src/util/good.h");
}

TEST(HeaderTest, TokenRules) {
  const std::vector<SourceFile> files = {
      {"src/util/bad.cc",
       "void F(const int* p) {\n"
       "  assert(p);\n"
       "  int* q = const_cast<int*>(p);\n"
       "  float f = *reinterpret_cast<const float*>(q);\n"
       "  static_assert(sizeof(int) == 4);\n"  // not a bare assert
       "  STHSL_CHECK(f > 0);\n"               // macro, fine
       "}\n"}};
  const auto findings = RunHeaderPass(files);
  EXPECT_EQ(CountRule(findings, "bare-assert"), 1);
  EXPECT_EQ(CountRule(findings, "const-cast"), 1);
  EXPECT_EQ(CountRule(findings, "reinterpret-cast"), 1);
}

// -------------------------------------------------------------- baseline --

TEST(BaselineTest, ParseAndApply) {
  std::vector<Finding> errors;
  const Baseline baseline = ParseBaseline(
      "# comment\n"
      "src/a.cc:bare-assert:2\n"
      "src/b.cc:const-cast   # all instances\n",
      "test", &errors);
  EXPECT_TRUE(errors.empty());
  std::vector<Finding> findings = {
      {"src/a.cc", 1, "bare-assert", Severity::kError, "m"},
      {"src/a.cc", 2, "bare-assert", Severity::kError, "m"},
      {"src/a.cc", 3, "bare-assert", Severity::kError, "m"},  // overflows
      {"src/b.cc", 1, "const-cast", Severity::kError, "m"},
      {"src/b.cc", 9, "const-cast", Severity::kError, "m"},
      {"src/c.cc", 1, "const-cast", Severity::kError, "m"},  // not listed
  };
  const int suppressed = ApplyBaseline(baseline, &findings);
  EXPECT_EQ(suppressed, 4);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].path, "src/a.cc");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_EQ(findings[1].path, "src/c.cc");
}

TEST(BaselineTest, MalformedAndUnknownRuleLinesReport) {
  std::vector<Finding> errors;
  ParseBaseline("no-colons-here\nsrc/a.cc:not-a-rule\n", "test", &errors);
  EXPECT_EQ(errors.size(), 2u);
}

TEST(BaselineTest, RenderRoundTrips) {
  const std::vector<Finding> findings = {
      {"src/a.cc", 1, "bare-assert", Severity::kError, "m"},
      {"src/a.cc", 5, "bare-assert", Severity::kError, "m"},
      {"src/b.cc", 2, "const-cast", Severity::kError, "m"},
  };
  std::vector<Finding> parse_errors;
  const Baseline round =
      ParseBaseline(RenderBaseline(findings), "gen", &parse_errors);
  EXPECT_TRUE(parse_errors.empty());
  std::vector<Finding> copy = findings;
  EXPECT_EQ(ApplyBaseline(round, &copy), 3);
  EXPECT_TRUE(copy.empty());
}

// -------------------------------------------------------------- analyzer --

std::vector<SourceFile> MixedTree() {
  return {
      {"src/tensor/bad.cc",
       "#include \"serve/http.h\"\nint a = rand();\n"},
      {"src/util/bad.h", "int x;\n"},  // missing guard
  };
}

TEST(AnalyzerTest, OnlyPassesFilter) {
  AnalyzeOptions options;
  options.check_self_contained = false;
  options.only_passes = {"layering"};
  auto result = RunAnalysisOnFiles(MixedTree(), options);
  EXPECT_EQ(RuleIds(result.findings),
            std::vector<std::string>{"layer-dag"});

  options.only_passes = {"determinism", "headers"};
  result = RunAnalysisOnFiles(MixedTree(), options);
  EXPECT_TRUE(HasRule(result.findings, "det-rand"));
  EXPECT_TRUE(HasRule(result.findings, "include-guard"));
  EXPECT_FALSE(HasRule(result.findings, "layer-dag"));
}

TEST(AnalyzerTest, FindingsAreSorted) {
  AnalyzeOptions options;
  options.check_self_contained = false;
  const auto result = RunAnalysisOnFiles(MixedTree(), options);
  for (size_t i = 1; i < result.findings.size(); ++i) {
    const Finding& a = result.findings[i - 1];
    const Finding& b = result.findings[i];
    EXPECT_LE(a.path, b.path);
  }
}

TEST(AnalyzerTest, SarifReportStructure) {
  AnalyzeOptions options;
  options.check_self_contained = false;
  const auto result = RunAnalysisOnFiles(MixedTree(), options);
  const std::string sarif = RenderReport(result, "sarif");
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"sthsl_analyze\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"layer-dag\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
  // Every catalog rule is described in the tool.driver.rules table.
  for (const RuleInfo& rule : Rules()) {
    EXPECT_NE(sarif.find("\"id\": \"" + std::string(rule.id) + "\""),
              std::string::npos)
        << rule.id;
  }
}

TEST(AnalyzerTest, JsonReportEscapes) {
  AnalyzeResult result;
  result.ok = true;
  result.files_scanned = 1;
  result.findings = {{"src/a.cc", 3, "layer-dag", Severity::kError,
                      "message with \"quotes\" and\nnewline"}};
  const std::string json = RenderReport(result, "json");
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
}

TEST(AnalyzerTest, RuleCatalogIsConsistent) {
  for (const RuleInfo& rule : Rules()) {
    EXPECT_EQ(FindRule(rule.id), &rule);
    const std::string pass = rule.pass;
    EXPECT_TRUE(std::find(PassNames().begin(), PassNames().end(), pass) !=
                PassNames().end())
        << pass;
  }
  EXPECT_EQ(FindRule("no-such-rule"), nullptr);
}

}  // namespace
}  // namespace sthsl::analyze
