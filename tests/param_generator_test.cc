// Parameterized statistical property tests of the data generator, swept
// over city presets and seeds: the phenomena the paper's method relies on
// must be present in every configuration we benchmark with.

#include <numeric>
#include <string>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/stats.h"

namespace sthsl {
namespace {

struct PresetCase {
  std::string name;
  CrimeGenConfig config;
};

class GeneratorPresetSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {
 protected:
  static PresetCase Preset(int index) {
    switch (index) {
      case 0:
        return {"nyc_small", NycSmallPreset()};
      case 1:
        return {"chi_small", ChicagoSmallPreset()};
      default: {
        CrimeGenConfig tiny;
        tiny.rows = 5;
        tiny.cols = 5;
        tiny.days = 180;
        tiny.category_totals = {900, 2400, 950, 1100};
        return {"tiny", tiny};
      }
    }
  }
};

TEST_P(GeneratorPresetSweep, TotalsWithinCalibrationBand) {
  auto [preset_index, seed] = GetParam();
  PresetCase preset = Preset(preset_index);
  preset.config.seed = seed;
  CrimeDataset data = GenerateCrimeData(preset.config);
  for (int64_t c = 0; c < data.num_categories(); ++c) {
    const double target =
        preset.config.category_totals[static_cast<size_t>(c)];
    const double actual = data.CategoryTotal(c);
    // Zone regimes are mean-one corrected; allow the regime band.
    EXPECT_GT(actual, target * 0.55) << preset.name << " category " << c;
    EXPECT_LT(actual, target * 1.8) << preset.name << " category " << c;
  }
}

TEST_P(GeneratorPresetSweep, SpatialSkewPresent) {
  auto [preset_index, seed] = GetParam();
  PresetCase preset = Preset(preset_index);
  preset.config.seed = seed;
  CrimeDataset data = GenerateCrimeData(preset.config);
  for (int64_t c = 0; c < data.num_categories(); ++c) {
    EXPECT_GT(SpatialGini(data, c), 0.3)
        << preset.name << " category " << c << " lacks the Fig. 2 skew";
  }
}

TEST_P(GeneratorPresetSweep, SparseRegionsExist) {
  auto [preset_index, seed] = GetParam();
  PresetCase preset = Preset(preset_index);
  preset.config.seed = seed;
  CrimeDataset data = GenerateCrimeData(preset.config);
  auto histogram = DensityHistogram(data, 0.25);
  const int64_t total =
      std::accumulate(histogram.begin(), histogram.end(), int64_t{0});
  EXPECT_EQ(total, data.num_regions());
  // The sparse half must be populated (the Fig. 1 motivation).
  EXPECT_GT(histogram[0] + histogram[1], 0) << preset.name;
}

TEST_P(GeneratorPresetSweep, CountsAreNonNegativeIntegers) {
  auto [preset_index, seed] = GetParam();
  PresetCase preset = Preset(preset_index);
  preset.config.seed = seed;
  CrimeDataset data = GenerateCrimeData(preset.config);
  for (float v : data.counts().Data()) {
    ASSERT_GE(v, 0.0f);
    ASSERT_EQ(v, static_cast<float>(static_cast<int64_t>(v)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    PresetsAndSeeds, GeneratorPresetSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(uint64_t{1}, uint64_t{20140101})),
    [](const ::testing::TestParamInfo<GeneratorPresetSweep::ParamType>&
           info) {
      return "preset" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace sthsl
