// Tests for the utility substrate: Status/Result, RNG distributions, CSV.

#include <cstdio>
#include <numeric>
#include <string>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/timer.h"

namespace sthsl {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCodesAndMessages) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad shape");
  EXPECT_EQ(Status::IoError("x").code(), Status::Code::kIoError);
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), Status::Code::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), Status::Code::kInternal);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            Status::Code::kFailedPrecondition);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);
  Result<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kNotFound);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
  Rng c(124);
  EXPECT_NE(Rng(123).NextU64(), c.NextU64());
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(7), 7u);
  }
  // n=1 always returns 0.
  EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(3);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, PoissonMeanSmallAndLargeRates) {
  Rng rng(4);
  for (double rate : {0.3, 3.0, 80.0}) {
    double total = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) total += rng.Poisson(rate);
    EXPECT_NEAR(total / n, rate, rate * 0.1 + 0.05) << "rate " << rate;
  }
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, ParetoHeavyTail) {
  Rng rng(5);
  int above10 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Pareto(1.0, 1.2);
    EXPECT_GE(x, 1.0);
    if (x > 10.0) ++above10;
  }
  // P(X > 10) = 10^-1.2 ~ 0.063 for alpha=1.2.
  EXPECT_NEAR(static_cast<double>(above10) / n, 0.063, 0.02);
}

TEST(RngTest, GammaMean) {
  Rng rng(6);
  for (double shape : {0.5, 2.0, 9.0}) {
    double total = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) total += rng.Gamma(shape, 2.0);
    EXPECT_NEAR(total / n, shape * 2.0, shape * 2.0 * 0.06)
        << "shape " << shape;
  }
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(7);
  auto perm = rng.Permutation(50);
  std::vector<bool> seen(50, false);
  for (int v : perm) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 50);
    EXPECT_FALSE(seen[static_cast<size_t>(v)]);
    seen[static_cast<size_t>(v)] = true;
  }
}

TEST(RngTest, ForkIndependentStreams) {
  Rng parent(8);
  Rng child = parent.Fork();
  // Streams should differ from each other and from the parent's continuation.
  EXPECT_NE(child.NextU64(), parent.NextU64());
}

TEST(LoggingTest, Iso8601TimestampFormat) {
  const std::string ts = internal_logging::FormatTimestampIso8601();
  // "YYYY-MM-DDTHH:MM:SS.mmmZ" — 24 characters with fixed separators.
  ASSERT_EQ(ts.size(), 24u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[7], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts[13], ':');
  EXPECT_EQ(ts[16], ':');
  EXPECT_EQ(ts[19], '.');
  EXPECT_EQ(ts[23], 'Z');
  for (size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u, 11u, 12u, 14u, 15u, 17u,
                   18u, 20u, 21u, 22u}) {
    EXPECT_TRUE(ts[i] >= '0' && ts[i] <= '9') << "position " << i;
  }
}

TEST(LoggingTest, LogLevelRoundTrip) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(saved);
}

TEST(TimerTest, ElapsedUnitsAgree) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
  const double seconds = timer.ElapsedSeconds();
  const double micros = timer.ElapsedMicros();
  EXPECT_GT(micros, 0.0);
  // Micros read slightly later than seconds; both measure the same clock.
  EXPECT_GE(micros, seconds * 1e6);
  EXPECT_LT(micros, (seconds + 0.1) * 1e6);
}

TEST(CsvTest, SplitPlainLine) {
  auto cells = SplitCsvLine("a,b,c");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[2], "c");
}

TEST(CsvTest, SplitQuotedCells) {
  auto cells = SplitCsvLine("\"x,y\",plain,\"he said \"\"hi\"\"\"");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "x,y");
  EXPECT_EQ(cells[1], "plain");
  EXPECT_EQ(cells[2], "he said \"hi\"");
}

TEST(CsvTest, EmptyCells) {
  auto cells = SplitCsvLine(",,");
  ASSERT_EQ(cells.size(), 3u);
  for (const auto& c : cells) EXPECT_TRUE(c.empty());
}

TEST(CsvTest, WriteReadRoundTrip) {
  CsvTable table;
  table.header = {"name", "value"};
  table.rows = {{"plain", "1"}, {"with,comma", "2"}, {"with\"quote", "3"}};
  const std::string path = "/tmp/sthsl_util_csv_test.csv";
  ASSERT_TRUE(WriteCsv(path, table).ok());
  auto loaded_or = ReadCsv(path);
  ASSERT_TRUE(loaded_or.ok());
  const CsvTable& loaded = loaded_or.value();
  EXPECT_EQ(loaded.header, table.header);
  ASSERT_EQ(loaded.rows.size(), table.rows.size());
  EXPECT_EQ(loaded.rows[1][0], "with,comma");
  EXPECT_EQ(loaded.rows[2][0], "with\"quote");
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileIsIoError) {
  auto result = ReadCsv("/tmp/definitely_missing_sthsl.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kIoError);
}

}  // namespace
}  // namespace sthsl
