// Tests for the runtime autograd/numerics validator: injected NaNs abort
// naming the offending op, malformed backward gradients are rejected,
// double-backward on a consumed graph is detected, and the disabled path is
// a strict no-op.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/sthsl_model.h"
#include "tensor/debug_validator.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace sthsl {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

/// Restores the validator enablement flag when the test scope ends.
class ScopedDebugChecks {
 public:
  explicit ScopedDebugChecks(bool enabled)
      : previous_(SetDebugChecks(enabled)) {}
  ~ScopedDebugChecks() { SetDebugChecks(previous_); }

 private:
  bool previous_;
};

TEST(DebugValidatorTest, InjectedNanInForwardOpAbortsNamingTheOp) {
  ScopedDebugChecks enabled(true);
  Tensor a = Tensor::FromVector({2}, {1.0f, kNan});
  Tensor b = Tensor::Ones({2});
  EXPECT_DEATH(Add(a, b), "forward op 'add' produced NaN");
}

TEST(DebugValidatorTest, InfPropagationIsAlsoCaught) {
  ScopedDebugChecks enabled(true);
  Tensor a = Tensor::FromVector({2}, {1.0f, kInf});
  EXPECT_DEATH(MulScalar(a, 2.0f), "forward op 'mul_scalar' produced");
}

TEST(DebugValidatorTest, NanOperandOfMatMulIsReportedAtTheInput) {
  ScopedDebugChecks enabled(true);
  Tensor a = Tensor::FromVector({1, 2}, {kNan, 1.0f});
  Tensor b = Tensor::Ones({2, 1});
  EXPECT_DEATH(MatMul(a, b), "op 'matmul' received NaN in operand 'a'");
}

TEST(DebugValidatorTest, ShapeMismatchedBackwardGradientAborts) {
  ScopedDebugChecks enabled(true);
  Tensor x = Tensor::Ones({2, 2}, /*requires_grad=*/true);
  // A deliberately buggy op whose backward returns a (4)-shaped gradient for
  // a (2, 2)-shaped input: same element count, wrong shape.
  Tensor y = MakeResult({2, 2}, x.Data(), "buggy_op", {x},
                        [](const Tensor&) -> std::vector<Tensor> {
                          return {Tensor::Ones({4})};
                        });
  EXPECT_DEATH(y.Backward(Tensor::Ones({2, 2})),
               "backward of 'buggy_op' returned a gradient of shape");
}

TEST(DebugValidatorTest, NanBackwardGradientAborts) {
  ScopedDebugChecks enabled(true);
  Tensor x = Tensor::Ones({2}, /*requires_grad=*/true);
  Tensor y = MakeResult({2}, x.Data(), "nan_grad_op", {x},
                        [](const Tensor&) -> std::vector<Tensor> {
                          return {Tensor::FromVector({2}, {kNan, 0.0f})};
                        });
  EXPECT_DEATH(y.Backward(Tensor::Ones({2})),
               "backward of 'nan_grad_op' produced NaN");
}

TEST(DebugValidatorTest, DoubleBackwardOnConsumedGraphAborts) {
  ScopedDebugChecks enabled(true);
  Tensor x = Tensor::Ones({3}, /*requires_grad=*/true);
  Tensor y = Sum(Mul(x, x));
  y.Backward();
  EXPECT_DEATH(y.Backward(), "double Backward through op");
}

TEST(DebugValidatorTest, OptimizerStepWithNanGradientAborts) {
  ScopedDebugChecks enabled(true);
  Tensor w = Tensor::Ones({2}, /*requires_grad=*/true);
  w.MutableGrad()[0] = kNan;
  Adam adam({w}, 0.01f, 0.9f, 0.999f, 1e-8f, 0.0f);
  EXPECT_DEATH(adam.Step(), "Adam step sees NaN in the gradient");

  Sgd sgd({w}, 0.01f, 0.0f, 0.0f);
  EXPECT_DEATH(sgd.Step(), "Sgd step sees NaN in the gradient");
}

TEST(DebugValidatorTest, CleanTrainingLoopPassesUnderValidation) {
  ScopedDebugChecks enabled(true);
  // y = 2x regression: a few Adam steps must run without tripping any check.
  Tensor w = Tensor::Scalar(0.0f, /*requires_grad=*/true);
  Tensor x = Tensor::FromVector({4}, {1.0f, 2.0f, 3.0f, 4.0f});
  Tensor target = Tensor::FromVector({4}, {2.0f, 4.0f, 6.0f, 8.0f});
  Adam adam({w}, 0.1f, 0.9f, 0.999f, 1e-8f, 0.0f);
  float last_loss = 0.0f;
  for (int step = 0; step < 5; ++step) {
    adam.ZeroGrad();
    Tensor loss = MseLoss(Mul(x, w), target);
    loss.Backward();
    adam.Step();
    last_loss = loss.Item();
  }
  EXPECT_TRUE(std::isfinite(last_loss));
}

TEST(DebugValidatorTest, NanInjectedIntoSthslTrainingStepAborts) {
  ScopedDebugChecks enabled(true);
  Rng rng(42);
  SthslConfig config;
  config.dim = 4;
  config.num_hyperedges = 8;
  config.train.window = 7;
  SthslNet net(config, 3, 3, 2, 0.1f, 0.9f, rng);
  // Corrupt one parameter value, as a numerics bug in an update rule would.
  net.MutableParameters()[0].MutableData()[0] = kNan;
  Rng data_rng(43);
  Tensor window = Tensor::Rand({9, 7, 2}, data_rng, 0.0f, 2.0f);
  EXPECT_DEATH(net.Forward(window, /*training=*/true), "debug validator");
}

TEST(DebugValidatorTest, DisabledValidatorIsANoOp) {
  ScopedDebugChecks disabled(false);

  // NaN flows through forward ops untouched.
  Tensor a = Tensor::FromVector({2}, {1.0f, kNan});
  Tensor sum = Add(a, Tensor::Ones({2}));
  EXPECT_FLOAT_EQ(sum.At(0), 2.0f);
  EXPECT_TRUE(std::isnan(sum.At(1)));

  // NaN operands reach the matmul kernel without aborting.
  Tensor m = MatMul(Tensor::FromVector({1, 2}, {kNan, 1.0f}),
                    Tensor::Ones({2, 1}));
  EXPECT_TRUE(std::isnan(m.At(0)));

  // Double backward silently re-runs the tape (legacy semantics).
  Tensor x = Tensor::Ones({3}, /*requires_grad=*/true);
  Tensor y = Sum(Mul(x, x));
  y.Backward();
  y.Backward();
  EXPECT_FLOAT_EQ(x.Grad()[0], 4.0f);  // two accumulated passes of d/dx x^2

  // Optimizer steps on NaN gradients proceed.
  Tensor w = Tensor::Ones({2}, /*requires_grad=*/true);
  w.MutableGrad()[0] = kNan;
  Sgd sgd({w}, 0.01f, 0.0f, 0.0f);
  sgd.Step();
  EXPECT_TRUE(std::isnan(w.Data()[0]));
}

TEST(DebugValidatorTest, SetDebugChecksReturnsPreviousState) {
  const bool initial = DebugChecksEnabled();
  const bool previous = SetDebugChecks(true);
  EXPECT_EQ(previous, initial);
  EXPECT_TRUE(DebugChecksEnabled());
  SetDebugChecks(false);
  EXPECT_FALSE(DebugChecksEnabled());
  SetDebugChecks(initial);
}

}  // namespace
}  // namespace sthsl
