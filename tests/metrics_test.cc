// Tests for the masked MAE/MAPE evaluation protocol.

#include <gtest/gtest.h>

#include "metrics/metrics.h"
#include "tensor/tensor.h"

namespace sthsl {
namespace {

TEST(MetricsTest, PerfectPredictionIsZeroError) {
  CrimeMetrics metrics(2, 2);
  Tensor truth = Tensor::FromVector({2, 2}, {1, 0, 2, 3});
  metrics.AddDay(truth, truth);
  EvalResult overall = metrics.Overall();
  EXPECT_EQ(overall.evaluated_entries, 3);  // three positive entries
  EXPECT_DOUBLE_EQ(overall.mae, 0.0);
  EXPECT_DOUBLE_EQ(overall.mape, 0.0);
}

TEST(MetricsTest, MaskedEntriesOnly) {
  CrimeMetrics metrics(1, 2);
  Tensor truth = Tensor::FromVector({1, 2}, {0, 2});
  Tensor pred = Tensor::FromVector({1, 2}, {100, 1});
  metrics.AddDay(pred, truth);
  // The zero-truth entry contributes nothing despite a huge error.
  EvalResult overall = metrics.Overall();
  EXPECT_EQ(overall.evaluated_entries, 1);
  EXPECT_DOUBLE_EQ(overall.mae, 1.0);
  EXPECT_DOUBLE_EQ(overall.mape, 0.5);
}

TEST(MetricsTest, PerCategorySeparation) {
  CrimeMetrics metrics(1, 2);
  Tensor truth = Tensor::FromVector({1, 2}, {1, 4});
  Tensor pred = Tensor::FromVector({1, 2}, {2, 2});
  metrics.AddDay(pred, truth);
  EXPECT_DOUBLE_EQ(metrics.Category(0).mae, 1.0);
  EXPECT_DOUBLE_EQ(metrics.Category(0).mape, 1.0);
  EXPECT_DOUBLE_EQ(metrics.Category(1).mae, 2.0);
  EXPECT_DOUBLE_EQ(metrics.Category(1).mape, 0.5);
}

TEST(MetricsTest, AccumulatesAcrossDays) {
  CrimeMetrics metrics(1, 1);
  metrics.AddDay(Tensor::FromVector({1, 1}, {2}),
                 Tensor::FromVector({1, 1}, {1}));
  metrics.AddDay(Tensor::FromVector({1, 1}, {1}),
                 Tensor::FromVector({1, 1}, {4}));
  EXPECT_EQ(metrics.days_added(), 2);
  EvalResult r = metrics.Category(0);
  EXPECT_EQ(r.evaluated_entries, 2);
  EXPECT_DOUBLE_EQ(r.mae, (1.0 + 3.0) / 2.0);
  EXPECT_DOUBLE_EQ(r.mape, (1.0 + 0.75) / 2.0);
}

TEST(MetricsTest, RegionSubset) {
  CrimeMetrics metrics(3, 1);
  Tensor truth = Tensor::FromVector({3, 1}, {1, 2, 4});
  Tensor pred = Tensor::FromVector({3, 1}, {2, 2, 0});
  metrics.AddDay(pred, truth);
  EvalResult sparse = metrics.CategoryForRegions(0, {0, 1});
  EXPECT_DOUBLE_EQ(sparse.mae, 0.5);
  EvalResult dense = metrics.CategoryForRegions(0, {2});
  EXPECT_DOUBLE_EQ(dense.mae, 4.0);
  EXPECT_DOUBLE_EQ(dense.mape, 1.0);
}

TEST(MetricsTest, EmptySubsetReportsZeroEntries) {
  CrimeMetrics metrics(2, 1);
  metrics.AddDay(Tensor::Zeros({2, 1}), Tensor::Zeros({2, 1}));
  EvalResult r = metrics.CategoryForRegions(0, {});
  EXPECT_EQ(r.evaluated_entries, 0);
  EXPECT_DOUBLE_EQ(r.mae, 0.0);
}

TEST(MetricsTest, RegionMapeMarksUnevaluatedRegions) {
  CrimeMetrics metrics(2, 1);
  Tensor truth = Tensor::FromVector({2, 1}, {2, 0});
  Tensor pred = Tensor::FromVector({2, 1}, {1, 5});
  metrics.AddDay(pred, truth);
  auto mape = metrics.RegionMape(0);
  ASSERT_EQ(mape.size(), 2u);
  EXPECT_DOUBLE_EQ(mape[0], 0.5);
  EXPECT_DOUBLE_EQ(mape[1], -1.0);  // never had positive truth
}

}  // namespace
}  // namespace sthsl
