// Parameterized property tests (TEST_P / INSTANTIATE_TEST_SUITE_P):
// autograd correctness and algebraic laws swept over an op registry and a
// grid of shapes, instead of hand-picked cases.

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace sthsl {
namespace {

// ---------------------------------------------------------------------------
// Sweep 1: gradient checks for unary ops across shapes and input ranges.
// ---------------------------------------------------------------------------

struct UnaryOpCase {
  std::string name;
  std::function<Tensor(const Tensor&)> op;
  float lo;  // input sampling range (kept away from non-smooth points)
  float hi;
};

class UnaryGradSweep
    : public ::testing::TestWithParam<std::tuple<UnaryOpCase, int>> {};

void CheckScalarGrad(const std::function<Tensor(const Tensor&)>& op,
                     Tensor x, float eps = 1e-2f, float tol = 3e-2f) {
  Tensor y = Sum(op(x));
  x.ZeroGrad();
  y.Backward();
  ASSERT_FALSE(x.Grad().empty());
  for (int64_t i = 0; i < x.Numel(); ++i) {
    const float saved = x.Data()[static_cast<size_t>(i)];
    float plus;
    float minus;
    {
      NoGradGuard no_grad;
      x.MutableData()[static_cast<size_t>(i)] = saved + eps;
      plus = Sum(op(x)).Item();
      x.MutableData()[static_cast<size_t>(i)] = saved - eps;
      minus = Sum(op(x)).Item();
      x.MutableData()[static_cast<size_t>(i)] = saved;
    }
    const float numeric = (plus - minus) / (2.0f * eps);
    const float analytic = x.Grad()[static_cast<size_t>(i)];
    EXPECT_NEAR(analytic, numeric, tol * std::max(1.0f, std::fabs(numeric)))
        << "element " << i;
  }
}

TEST_P(UnaryGradSweep, MatchesNumericGradient) {
  const auto& [op_case, shape_index] = GetParam();
  const std::vector<std::vector<int64_t>> shapes = {
      {3}, {2, 3}, {2, 2, 2}, {1, 4, 1, 2}};
  Rng rng(static_cast<uint64_t>(shape_index) * 7919 + 13);
  Tensor x = Tensor::Rand(shapes[static_cast<size_t>(shape_index)], rng,
                          op_case.lo, op_case.hi, /*requires_grad=*/true);
  CheckScalarGrad(op_case.op, x);
}

std::vector<UnaryOpCase> UnaryCases() {
  return {
      {"exp", [](const Tensor& t) { return Exp(t); }, -1.0f, 1.0f},
      {"log", [](const Tensor& t) { return Log(t); }, 0.5f, 2.0f},
      {"sqrt", [](const Tensor& t) { return Sqrt(t); }, 0.5f, 2.0f},
      {"sigmoid", [](const Tensor& t) { return Sigmoid(t); }, -2.0f, 2.0f},
      {"tanh", [](const Tensor& t) { return Tanh(t); }, -2.0f, 2.0f},
      {"square", [](const Tensor& t) { return Square(t); }, -2.0f, 2.0f},
      {"neg", [](const Tensor& t) { return Neg(t); }, -2.0f, 2.0f},
      {"abs_pos", [](const Tensor& t) { return Abs(t); }, 0.3f, 2.0f},
      {"leaky_pos", [](const Tensor& t) { return LeakyRelu(t, 0.2f); },
       0.3f, 2.0f},
      {"leaky_neg", [](const Tensor& t) { return LeakyRelu(t, 0.2f); },
       -2.0f, -0.3f},
      {"scalar_affine",
       [](const Tensor& t) { return AddScalar(MulScalar(t, 2.5f), -1.0f); },
       -1.0f, 1.0f},
      {"softmax_rowsum",
       [](const Tensor& t) {
         Tensor flat = Reshape(t, {1, -1});
         Rng weight_rng(99);  // fresh each call: identical weights
         Tensor w = Tensor::Rand(flat.Shape(), weight_rng, -1.0f, 1.0f);
         return Mul(Softmax(flat, 1), w);
       },
       -1.0f, 1.0f},
  };
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOpsAllShapes, UnaryGradSweep,
    ::testing::Combine(::testing::ValuesIn(UnaryCases()),
                       ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<UnaryGradSweep::ParamType>& info) {
      return std::get<0>(info.param).name + "_shape" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Sweep 2: broadcasting algebra over shape pairs.
// ---------------------------------------------------------------------------

struct BroadcastCase {
  std::vector<int64_t> a;
  std::vector<int64_t> b;
  std::vector<int64_t> expected;
};

class BroadcastSweep : public ::testing::TestWithParam<BroadcastCase> {};

TEST_P(BroadcastSweep, ShapeRulesAndCommutativity) {
  const auto& c = GetParam();
  EXPECT_EQ(BroadcastShapes(c.a, c.b), c.expected);
  EXPECT_EQ(BroadcastShapes(c.b, c.a), c.expected);

  Rng rng(11);
  Tensor x = Tensor::Rand(c.a, rng, -1.0f, 1.0f);
  Tensor y = Tensor::Rand(c.b, rng, -1.0f, 1.0f);
  Tensor sum_xy = Add(x, y);
  Tensor sum_yx = Add(y, x);
  EXPECT_EQ(sum_xy.Shape(), c.expected);
  EXPECT_EQ(sum_xy.Data(), sum_yx.Data());  // addition commutes

  // Multiplication distributes over addition under broadcasting.
  Tensor z = Tensor::Rand(c.b, rng, -1.0f, 1.0f);
  Tensor lhs = Mul(x, Add(y, z));
  Tensor rhs = Add(Mul(x, y), Mul(x, z));
  for (int64_t i = 0; i < lhs.Numel(); ++i) {
    EXPECT_NEAR(lhs.At(i), rhs.At(i), 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapePairs, BroadcastSweep,
    ::testing::Values(BroadcastCase{{3}, {3}, {3}},
                      BroadcastCase{{2, 3}, {3}, {2, 3}},
                      BroadcastCase{{2, 3}, {1, 3}, {2, 3}},
                      BroadcastCase{{2, 1}, {1, 5}, {2, 5}},
                      BroadcastCase{{4, 1, 3}, {2, 1}, {4, 2, 3}},
                      BroadcastCase{{}, {2, 2}, {2, 2}},
                      BroadcastCase{{1}, {3, 1, 4}, {3, 1, 4}}));

// ---------------------------------------------------------------------------
// Sweep 3: reduction laws across dims and keepdim.
// ---------------------------------------------------------------------------

class ReductionSweep
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(ReductionSweep, SumDecomposesAndMeanScales) {
  const auto& [dim, keepdim] = GetParam();
  Rng rng(17);
  Tensor x = Tensor::Rand({3, 4, 5}, rng, -2.0f, 2.0f);

  Tensor partial = Sum(x, {dim}, keepdim);
  // Reducing the remaining dims must equal the full sum.
  std::vector<int64_t> rest;
  for (int64_t d = 0; d < partial.Dim(); ++d) rest.push_back(d);
  Tensor total = Sum(partial, rest, false);
  EXPECT_NEAR(total.Item(), Sum(x).Item(), 1e-3f);

  // Mean = Sum / extent along the reduced dim.
  Tensor mean = Mean(x, {dim}, keepdim);
  const float extent = static_cast<float>(x.Size(dim));
  for (int64_t i = 0; i < mean.Numel(); ++i) {
    EXPECT_NEAR(mean.At(i) * extent, partial.At(i), 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(DimsAndKeepdim, ReductionSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Bool()));

// ---------------------------------------------------------------------------
// Sweep 4: matmul against a naive reference across shape triples.
// ---------------------------------------------------------------------------

class MatMulSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulSweep, MatchesNaiveReference) {
  const auto& [m, k, n] = GetParam();
  Rng rng(23);
  Tensor a = Tensor::Rand({m, k}, rng, -1.0f, 1.0f);
  Tensor b = Tensor::Rand({k, n}, rng, -1.0f, 1.0f);
  Tensor c = MatMul(a, b);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float expected = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        expected += a.At({i, p}) * b.At({p, j});
      }
      EXPECT_NEAR(c.At({i, j}), expected, 1e-4f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ShapeTriples, MatMulSweep,
                         ::testing::Combine(::testing::Values(1, 3, 7),
                                            ::testing::Values(1, 4, 9),
                                            ::testing::Values(1, 2, 8)));

// ---------------------------------------------------------------------------
// Sweep 5: conv2d output extents across kernel/padding combinations.
// ---------------------------------------------------------------------------

class ConvShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ConvShapeSweep, OutputExtentFormulaHolds) {
  const auto& [kernel, pad] = GetParam();
  const int64_t height = 9;
  const int64_t width = 11;
  if (height + 2 * pad - kernel + 1 <= 0) GTEST_SKIP();
  Rng rng(29);
  Tensor input = Tensor::Rand({2, 3, height, width}, rng, -1.0f, 1.0f);
  Tensor weight = Tensor::Rand({4, 3, kernel, kernel}, rng, -1.0f, 1.0f);
  Tensor out = Conv2d(input, weight, Tensor(), pad, pad);
  EXPECT_EQ(out.Size(0), 2);
  EXPECT_EQ(out.Size(1), 4);
  EXPECT_EQ(out.Size(2), height + 2 * pad - kernel + 1);
  EXPECT_EQ(out.Size(3), width + 2 * pad - kernel + 1);
  for (float v : out.Data()) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(KernelsAndPads, ConvShapeSweep,
                         ::testing::Combine(::testing::Values(1, 3, 5),
                                            ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace sthsl
