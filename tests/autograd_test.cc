// Property tests of the autograd engine: analytic gradients of every op are
// validated against central finite differences, plus structural tests of
// accumulation, detachment and grad-mode switching.

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace sthsl {
namespace {

// Checks d(scalar fn)/d(each input) against central finite differences.
// Inputs must be leaf tensors with requires_grad set.
void ExpectGradMatchesNumeric(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, float eps = 1e-2f, float tol = 2e-2f) {
  Tensor out = fn(inputs);
  ASSERT_EQ(out.Numel(), 1) << "gradcheck requires a scalar objective";
  for (auto& t : inputs) t.ZeroGrad();
  out.Backward();

  for (size_t which = 0; which < inputs.size(); ++which) {
    auto& t = inputs[which];
    ASSERT_FALSE(t.Grad().empty())
        << "no gradient flowed to input " << which;
    for (int64_t i = 0; i < t.Numel(); ++i) {
      const float saved = t.Data()[static_cast<size_t>(i)];
      float plus;
      float minus;
      {
        NoGradGuard no_grad;
        t.MutableData()[static_cast<size_t>(i)] = saved + eps;
        plus = fn(inputs).Item();
        t.MutableData()[static_cast<size_t>(i)] = saved - eps;
        minus = fn(inputs).Item();
        t.MutableData()[static_cast<size_t>(i)] = saved;
      }
      const float numeric = (plus - minus) / (2.0f * eps);
      const float analytic = t.Grad()[static_cast<size_t>(i)];
      EXPECT_NEAR(analytic, numeric,
                  tol * std::max(1.0f, std::fabs(numeric)))
          << "input " << which << " element " << i;
    }
  }
}

Tensor RandLeaf(std::vector<int64_t> shape, Rng& rng, float lo = -1.0f,
                float hi = 1.0f) {
  return Tensor::Rand(std::move(shape), rng, lo, hi, /*requires_grad=*/true);
}

TEST(Autograd, AddGrad) {
  Rng rng(10);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) { return Sum(in[0] + in[1]); },
      {RandLeaf({2, 3}, rng), RandLeaf({2, 3}, rng)});
}

TEST(Autograd, AddBroadcastGrad) {
  Rng rng(11);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(in[0] + in[1]));
      },
      {RandLeaf({2, 3}, rng), RandLeaf({3}, rng)});
}

TEST(Autograd, SubGrad) {
  Rng rng(12);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(in[0] - in[1]));
      },
      {RandLeaf({4}, rng), RandLeaf({1}, rng)});
}

TEST(Autograd, MulGrad) {
  Rng rng(13);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) { return Sum(in[0] * in[1]); },
      {RandLeaf({3, 2}, rng), RandLeaf({3, 2}, rng)});
}

TEST(Autograd, MulBroadcastColumnGrad) {
  Rng rng(14);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) { return Sum(in[0] * in[1]); },
      {RandLeaf({3, 4}, rng), RandLeaf({3, 1}, rng)});
}

TEST(Autograd, DivGrad) {
  Rng rng(15);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) { return Sum(in[0] / in[1]); },
      {RandLeaf({4}, rng), RandLeaf({4}, rng, 0.5f, 2.0f)});
}

TEST(Autograd, ExpLogSqrtGrad) {
  Rng rng(16);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        return Sum(Exp(in[0])) + Sum(Log(in[1])) + Sum(Sqrt(in[1]));
      },
      {RandLeaf({3}, rng), RandLeaf({3}, rng, 0.5f, 2.0f)});
}

TEST(Autograd, SigmoidTanhGrad) {
  Rng rng(17);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        return Sum(Sigmoid(in[0]) * Tanh(in[0]));
      },
      {RandLeaf({5}, rng)});
}

TEST(Autograd, LeakyReluGrad) {
  Rng rng(18);
  // Keep inputs away from the kink at zero for a clean numeric check.
  Tensor x = Tensor::FromVector({4}, {-1.5f, -0.5f, 0.5f, 1.5f},
                                /*requires_grad=*/true);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(LeakyRelu(in[0], 0.2f)));
      },
      {x});
}

TEST(Autograd, PowScalarGrad) {
  Rng rng(19);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        return Sum(PowScalar(in[0], 3.0f));
      },
      {RandLeaf({3}, rng, 0.5f, 1.5f)});
}

TEST(Autograd, MatMulGrad) {
  Rng rng(20);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(MatMul(in[0], in[1])));
      },
      {RandLeaf({3, 4}, rng), RandLeaf({4, 2}, rng)});
}

TEST(Autograd, BatchedMatMulGrad) {
  Rng rng(21);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(MatMul(in[0], in[1])));
      },
      {RandLeaf({2, 3, 4}, rng), RandLeaf({2, 4, 2}, rng)});
}

TEST(Autograd, BatchedTimesSharedMatMulGrad) {
  Rng rng(22);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(MatMul(in[0], in[1])));
      },
      {RandLeaf({2, 3, 4}, rng), RandLeaf({4, 2}, rng)});
}

TEST(Autograd, SumDimsGrad) {
  Rng rng(23);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(Sum(in[0], {1})));
      },
      {RandLeaf({3, 4}, rng)});
}

TEST(Autograd, MeanGrad) {
  Rng rng(24);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        return Mean(Square(Mean(in[0], {0}, true)));
      },
      {RandLeaf({3, 4}, rng)});
}

TEST(Autograd, ReshapePermuteGrad) {
  Rng rng(25);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        Tensor t = Permute(Reshape(in[0], {2, 6}), {1, 0});
        return Sum(Square(t));
      },
      {RandLeaf({3, 4}, rng)});
}

TEST(Autograd, NarrowCatGrad) {
  Rng rng(26);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        Tensor head = Narrow(in[0], 0, 0, 2);
        Tensor tail = Narrow(in[0], 0, 2, 2);
        return Sum(Square(Cat({tail, head}, 0)) * 2.0f);
      },
      {RandLeaf({4, 3}, rng)});
}

TEST(Autograd, IndexSelectGradWithRepeats) {
  Rng rng(27);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(IndexSelect(in[0], 0, {1, 1, 0})));
      },
      {RandLeaf({3, 2}, rng)});
}

TEST(Autograd, SoftmaxGrad) {
  Rng rng(28);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        Tensor probs = Softmax(in[0], 1);
        // Weighted sum to give softmax a non-trivial downstream gradient.
        Tensor w = Tensor::FromVector({1, 4}, {1.0f, -2.0f, 3.0f, 0.5f});
        return Sum(probs * w);
      },
      {RandLeaf({3, 4}, rng)});
}

TEST(Autograd, Conv2dGrad) {
  Rng rng(29);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(Conv2d(in[0], in[1], in[2], 1, 1)));
      },
      {RandLeaf({2, 2, 3, 3}, rng), RandLeaf({2, 2, 3, 3}, rng),
       RandLeaf({2}, rng)});
}

TEST(Autograd, Conv2dNoPaddingGrad) {
  Rng rng(30);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(Conv2d(in[0], in[1], Tensor(), 0, 0)));
      },
      {RandLeaf({1, 1, 4, 4}, rng), RandLeaf({1, 1, 2, 2}, rng)});
}

TEST(Autograd, Conv1dGrad) {
  Rng rng(31);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(Conv1d(in[0], in[1], in[2], 1)));
      },
      {RandLeaf({2, 2, 5}, rng), RandLeaf({3, 2, 3}, rng),
       RandLeaf({3}, rng)});
}

TEST(Autograd, L2NormalizeGrad) {
  Rng rng(32);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        Tensor w = Tensor::FromVector({2, 3}, {1, 2, 3, -1, 0.5f, 2});
        return Sum(L2NormalizeRows(in[0]) * w);
      },
      {RandLeaf({2, 3}, rng, 0.3f, 1.0f)});
}

TEST(Autograd, CompositeLossGrad) {
  Rng rng(33);
  ExpectGradMatchesNumeric(
      [](const std::vector<Tensor>& in) {
        Tensor hidden = Tanh(MatMul(in[0], in[1]));
        Tensor out = MatMul(hidden, in[2]);
        Tensor target = Tensor::Ones(out.Shape());
        return MseLoss(out, target);
      },
      {RandLeaf({2, 3}, rng), RandLeaf({3, 4}, rng), RandLeaf({4, 1}, rng)});
}

// -- Structural behaviour -------------------------------------------------------

TEST(AutogradStructure, GradAccumulatesAcrossBackwardCalls) {
  Tensor x = Tensor::Ones({2}, /*requires_grad=*/true);
  Tensor y1 = Sum(x * 2.0f);
  y1.Backward();
  Tensor y2 = Sum(x * 3.0f);
  y2.Backward();
  EXPECT_FLOAT_EQ(x.Grad()[0], 5.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.Grad()[0], 0.0f);
}

TEST(AutogradStructure, DiamondGraphSumsPaths) {
  Tensor x = Tensor::Full({1}, 2.0f, /*requires_grad=*/true);
  Tensor a = x * 3.0f;
  Tensor b = x * 4.0f;
  Tensor y = Sum(a * b);  // y = 12 x^2, dy/dx = 24 x = 48
  y.Backward();
  EXPECT_FLOAT_EQ(x.Grad()[0], 48.0f);
}

TEST(AutogradStructure, ReusedTensorGetsBothContributions) {
  Tensor x = Tensor::Full({1}, 3.0f, /*requires_grad=*/true);
  Tensor y = Sum(x + x);  // dy/dx = 2
  y.Backward();
  EXPECT_FLOAT_EQ(x.Grad()[0], 2.0f);
}

TEST(AutogradStructure, DetachBlocksGradient) {
  Tensor x = Tensor::Full({1}, 2.0f, /*requires_grad=*/true);
  Tensor y = Sum(x.Detach() * x);  // only the non-detached path contributes
  y.Backward();
  EXPECT_FLOAT_EQ(x.Grad()[0], 2.0f);
}

TEST(AutogradStructure, NoGradGuardDisablesRecording) {
  Tensor x = Tensor::Ones({2}, /*requires_grad=*/true);
  {
    NoGradGuard guard;
    Tensor y = x * 2.0f;
    EXPECT_EQ(y.GradFn(), nullptr);
    EXPECT_FALSE(y.RequiresGrad());
  }
  Tensor z = x * 2.0f;
  EXPECT_NE(z.GradFn(), nullptr);
}

TEST(AutogradStructure, NoGradGuardNests) {
  EXPECT_TRUE(GradRecordingEnabled());
  {
    NoGradGuard g1;
    EXPECT_FALSE(GradRecordingEnabled());
    {
      NoGradGuard g2;
      EXPECT_FALSE(GradRecordingEnabled());
    }
    EXPECT_FALSE(GradRecordingEnabled());
  }
  EXPECT_TRUE(GradRecordingEnabled());
}

TEST(AutogradStructure, BackwardWithSeedGradient) {
  Tensor x = Tensor::Ones({3}, /*requires_grad=*/true);
  Tensor y = x * 2.0f;
  Tensor seed = Tensor::FromVector({3}, {1.0f, 10.0f, 100.0f});
  y.Backward(seed);
  EXPECT_FLOAT_EQ(x.Grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.Grad()[1], 20.0f);
  EXPECT_FLOAT_EQ(x.Grad()[2], 200.0f);
}

TEST(AutogradStructure, LongChainBackward) {
  // Deep graphs must not blow the stack (iterative topo sort).
  Tensor x = Tensor::Full({1}, 1.0f, /*requires_grad=*/true);
  Tensor y = x;
  for (int i = 0; i < 2000; ++i) y = y + 0.001f;
  Sum(y).Backward();
  EXPECT_FLOAT_EQ(x.Grad()[0], 1.0f);
}

TEST(AutogradStructure, GradDoesNotFlowToNonRequiringInputs) {
  Tensor x = Tensor::Ones({2}, /*requires_grad=*/true);
  Tensor c = Tensor::Ones({2});  // constant
  Tensor y = Sum(x * c);
  y.Backward();
  EXPECT_TRUE(c.Grad().empty());
  EXPECT_FLOAT_EQ(x.Grad()[0], 1.0f);
}

}  // namespace
}  // namespace sthsl
