// Clean kernel-layer file: deterministic iteration order, layered include,
// and a raw string plus a line continuation to exercise the lexer on real
// input ("std::thread" inside literals must not trip det-thread).

#include <map>
#include <string>

#include "util/widget.h"

namespace sthsl_analyze_fixture {

// A comment that mentions std::rand() and reinterpret_cast without using
// either; the analyzer must ignore comment text.
double OrderedSum(const std::map<int, double>& weights) {
  double total = 0.0;
  for (const auto& [key, value] : weights) {
    total += value;  // std::map iterates in key order: deterministic
  }
  return total;
}

const char* Banner() {
  return R"banner(raw string mentioning std::thread and const_cast)banner";
}

#define FIXTURE_GLUE(a, b) \
  a##b

int Glued() { return FIXTURE_GLUE(4, 2); }

}  // namespace sthsl_analyze_fixture
