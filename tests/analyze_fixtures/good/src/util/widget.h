#ifndef STHSL_UTIL_WIDGET_H_
#define STHSL_UTIL_WIDGET_H_

#include <mutex>
#include <vector>

namespace sthsl_analyze_fixture {

// Clean counterpart of the bad fixture: path-derived guard, RAII locking,
// prefix-guarded fields touched only under their mutex.
class Widget {
 public:
  void Push(int v) {
    std::lock_guard<std::mutex> lock(item_mu_);
    item_values_.push_back(v);
  }

  int Count() const {
    std::lock_guard<std::mutex> lock(item_mu_);
    return static_cast<int>(item_values_.size());
  }

 private:
  mutable std::mutex item_mu_;
  std::vector<int> item_values_;
};

}  // namespace sthsl_analyze_fixture

#endif  // STHSL_UTIL_WIDGET_H_
