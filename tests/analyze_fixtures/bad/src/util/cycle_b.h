#ifndef STHSL_UTIL_CYCLE_B_H_
#define STHSL_UTIL_CYCLE_B_H_

#include "util/cycle_a.h"

struct CycleBTag {};

#endif  // STHSL_UTIL_CYCLE_B_H_
