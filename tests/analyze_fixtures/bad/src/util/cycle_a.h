#ifndef STHSL_UTIL_CYCLE_A_H_
#define STHSL_UTIL_CYCLE_A_H_

// include-cycle violation: cycle_a.h -> cycle_b.h -> cycle_a.h.
#include "util/cycle_b.h"

struct CycleA {
  CycleBTag b;
};

#endif  // STHSL_UTIL_CYCLE_A_H_
