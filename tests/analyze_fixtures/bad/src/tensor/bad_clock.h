#ifndef WRONG_GUARD_H_
#define WRONG_GUARD_H_

// include-guard violation: the guard above should be path-derived
// (STHSL_TENSOR_BAD_CLOCK_H_).

#include <cassert>
#include <chrono>

namespace sthsl_analyze_fixture {

inline double WallClockSeconds() {
  // det-time violation: wall-clock read in a kernel layer.
  const auto now = std::chrono::system_clock::now();
  const double s = std::chrono::duration<double>(now.time_since_epoch())
                       .count();
  assert(s > 0);  // bare-assert violation
  return s;
}

inline int* StripConst(const int* value) {
  return const_cast<int*>(value);  // const-cast violation
}

inline int PunType(float f) {
  return *reinterpret_cast<int*>(&f);  // reinterpret-cast violation
}

}  // namespace sthsl_analyze_fixture

#endif  // WRONG_GUARD_H_
