// Deliberately broken file: the sthsl_analyze_fixture_bad ctest case
// asserts the determinism and layering passes report every pattern here
// and exit non-zero.

#include <cstdlib>
#include <thread>
#include <unordered_map>

#include "serve/engine.h"  // layer-dag violation: tensor must not see serve

namespace sthsl_analyze_fixture {

float NondeterministicSum(const std::unordered_map<int, float>& weights) {
  float total = 0.0f;
  // det-unordered-iter violation: float accumulation in hash order.
  for (const auto& [key, value] : weights) {
    total += value;
  }
  return total + static_cast<float>(std::rand());  // det-rand violation
}

void DetachedKernel() {
  std::thread worker([] {});  // det-thread violation: raw thread in tensor
  worker.detach();            // det-thread violation: detach
}

}  // namespace sthsl_analyze_fixture
