// Deliberately broken concurrency hygiene: every function below trips one
// rule of the concurrency pass.

#include <mutex>
#include <vector>

namespace sthsl_analyze_fixture {

class Queue {
 public:
  void PushUnguarded(int v) {
    queue_items_.push_back(v);  // guarded-field violation: no lock taken
  }

  void PushManual(int v) {
    queue_mu_.lock();  // mutex-guard violation: manual lock management
    queue_items_.push_back(v);
    queue_mu_.unlock();
  }

  void TransferAB() {
    std::lock_guard<std::mutex> a(alpha_mu_);
    std::lock_guard<std::mutex> b(beta_mu_);  // order: alpha then beta
    (void)a;
    (void)b;
  }

  void TransferBA() {
    std::lock_guard<std::mutex> b(beta_mu_);
    std::lock_guard<std::mutex> a(alpha_mu_);  // lock-order inversion
    (void)a;
    (void)b;
  }

 private:
  std::mutex queue_mu_;
  std::vector<int> queue_items_;
  std::mutex alpha_mu_;
  std::mutex beta_mu_;
};

}  // namespace sthsl_analyze_fixture
