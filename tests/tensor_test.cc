// Unit tests for the core Tensor type: creation, introspection, shape
// manipulation and forward values of the op library.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace sthsl {
namespace {

TEST(TensorCreate, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.Numel(), 6);
  EXPECT_EQ(t.Dim(), 2);
  EXPECT_EQ(t.Size(0), 2);
  EXPECT_EQ(t.Size(1), 3);
  EXPECT_EQ(t.Size(-1), 3);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.At(i), 0.0f);
}

TEST(TensorCreate, FullAndOnes) {
  Tensor f = Tensor::Full({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(f.At(i), 2.5f);
  Tensor o = Tensor::Ones({2, 2});
  EXPECT_EQ(o.At({1, 1}), 1.0f);
}

TEST(TensorCreate, FromVectorAndAt) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.At({0, 0}), 1.0f);
  EXPECT_EQ(t.At({0, 2}), 3.0f);
  EXPECT_EQ(t.At({1, 0}), 4.0f);
  EXPECT_EQ(t.At({1, 2}), 6.0f);
}

TEST(TensorCreate, ScalarTensor) {
  Tensor s = Tensor::Scalar(7.0f);
  EXPECT_EQ(s.Dim(), 0);
  EXPECT_EQ(s.Numel(), 1);
  EXPECT_EQ(s.Item(), 7.0f);
}

TEST(TensorCreate, RandWithinBounds) {
  Rng rng(1);
  Tensor t = Tensor::Rand({100}, rng, -2.0f, 3.0f);
  for (float v : t.Data()) {
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(TensorCreate, RandnRoughMoments) {
  Rng rng(2);
  Tensor t = Tensor::Randn({10000}, rng, 2.0f);
  double mean = 0.0;
  for (float v : t.Data()) mean += v;
  mean /= t.Numel();
  double var = 0.0;
  for (float v : t.Data()) var += (v - mean) * (v - mean);
  var /= t.Numel();
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(TensorCreate, XavierBound) {
  Rng rng(3);
  Tensor t = Tensor::XavierUniform({8, 8}, rng, 8, 8);
  const float bound = std::sqrt(6.0f / 16.0f);
  for (float v : t.Data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
  EXPECT_TRUE(t.RequiresGrad());
}

TEST(TensorBasics, DetachSharesNoState) {
  Tensor a = Tensor::Ones({2}, /*requires_grad=*/true);
  Tensor d = a.Detach();
  EXPECT_FALSE(d.RequiresGrad());
  d.MutableData()[0] = 5.0f;
  EXPECT_EQ(a.At(static_cast<int64_t>(0)), 1.0f);
}

TEST(TensorBasics, CopyAliases) {
  Tensor a = Tensor::Ones({2});
  Tensor b = a;
  b.MutableData()[0] = 9.0f;
  EXPECT_EQ(a.At(static_cast<int64_t>(0)), 9.0f);
}

TEST(ShapeHelpers, NumelAndStrides) {
  EXPECT_EQ(NumelOf({2, 3, 4}), 24);
  EXPECT_EQ(NumelOf({}), 1);
  auto s = StridesOf({2, 3, 4});
  EXPECT_EQ(s, (std::vector<int64_t>{12, 4, 1}));
}

TEST(ShapeHelpers, BroadcastShapes) {
  EXPECT_EQ(BroadcastShapes({2, 3}, {3}), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(BroadcastShapes({2, 1}, {1, 5}), (std::vector<int64_t>{2, 5}));
  EXPECT_EQ(BroadcastShapes({}, {4}), (std::vector<int64_t>{4}));
}

// -- Elementwise forward values ----------------------------------------------

TEST(OpsForward, AddSameShape) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  Tensor c = a + b;
  EXPECT_EQ(c.At(static_cast<int64_t>(0)), 11.0f);
  EXPECT_EQ(c.At(2), 33.0f);
}

TEST(OpsForward, AddBroadcastRow) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor row = Tensor::FromVector({3}, {10, 20, 30});
  Tensor c = a + row;
  EXPECT_EQ(c.At({0, 0}), 11.0f);
  EXPECT_EQ(c.At({1, 2}), 36.0f);
}

TEST(OpsForward, MulBroadcastColumn) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor col = Tensor::FromVector({2, 1}, {2, 10});
  Tensor c = a * col;
  EXPECT_EQ(c.At({0, 2}), 6.0f);
  EXPECT_EQ(c.At({1, 0}), 40.0f);
}

TEST(OpsForward, SubDivScalarOps) {
  Tensor a = Tensor::FromVector({2}, {6, 9});
  EXPECT_EQ((a - 1.0f).At(static_cast<int64_t>(0)), 5.0f);
  EXPECT_EQ((a * 2.0f).At(1), 18.0f);
  EXPECT_NEAR((a / 3.0f).At(1), 3.0f, 1e-6f);
  EXPECT_EQ((-a).At(static_cast<int64_t>(0)), -6.0f);
}

TEST(OpsForward, UnaryMath) {
  Tensor a = Tensor::FromVector({2}, {0.0f, 1.0f});
  EXPECT_NEAR(Exp(a).At(1), std::exp(1.0f), 1e-5f);
  EXPECT_NEAR(Sigmoid(a).At(static_cast<int64_t>(0)), 0.5f, 1e-6f);
  EXPECT_NEAR(Tanh(a).At(1), std::tanh(1.0f), 1e-6f);
  Tensor b = Tensor::FromVector({2}, {-2.0f, 2.0f});
  EXPECT_EQ(Relu(b).At(static_cast<int64_t>(0)), 0.0f);
  EXPECT_EQ(Relu(b).At(1), 2.0f);
  EXPECT_NEAR(LeakyRelu(b, 0.1f).At(static_cast<int64_t>(0)), -0.2f, 1e-6f);
  EXPECT_EQ(Abs(b).At(static_cast<int64_t>(0)), 2.0f);
  EXPECT_EQ(Square(b).At(1), 4.0f);
  EXPECT_EQ(ClampMin(b, 0.5f).At(static_cast<int64_t>(0)), 0.5f);
}

// -- Reductions ---------------------------------------------------------------

TEST(OpsReduce, SumAll) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(Sum(a).Item(), 10.0f);
  EXPECT_EQ(Mean(a).Item(), 2.5f);
}

TEST(OpsReduce, SumAlongDims) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor rows = Sum(a, {1});
  EXPECT_EQ(rows.Shape(), (std::vector<int64_t>{2}));
  EXPECT_EQ(rows.At(static_cast<int64_t>(0)), 6.0f);
  EXPECT_EQ(rows.At(1), 15.0f);

  Tensor cols = Sum(a, {0}, /*keepdim=*/true);
  EXPECT_EQ(cols.Shape(), (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(cols.At({0, 2}), 9.0f);

  Tensor all = Sum(a, {0, 1});
  EXPECT_EQ(all.Dim(), 0);
  EXPECT_EQ(all.Item(), 21.0f);
}

TEST(OpsReduce, MeanAlongNegativeDim) {
  Tensor a = Tensor::FromVector({2, 2}, {2, 4, 6, 8});
  Tensor m = Mean(a, {-1});
  EXPECT_EQ(m.At(static_cast<int64_t>(0)), 3.0f);
  EXPECT_EQ(m.At(1), 7.0f);
}

TEST(OpsReduce, MaxValues) {
  Tensor a = Tensor::FromVector({2, 3}, {5, 1, 2, 0, 9, 3});
  Tensor m = MaxValues(a, 1, /*keepdim=*/false);
  EXPECT_EQ(m.At(static_cast<int64_t>(0)), 5.0f);
  EXPECT_EQ(m.At(1), 9.0f);
  Tensor mk = MaxValues(a, 0, /*keepdim=*/true);
  EXPECT_EQ(mk.Shape(), (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(mk.At({0, 1}), 9.0f);
}

// -- Shape ops -----------------------------------------------------------------

TEST(OpsShape, ReshapeWithInference) {
  Tensor a = Tensor::FromVector({2, 6}, std::vector<float>(12, 1.0f));
  Tensor r = Reshape(a, {3, -1});
  EXPECT_EQ(r.Shape(), (std::vector<int64_t>{3, 4}));
}

TEST(OpsShape, PermuteValues) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor p = Permute(a, {1, 0});
  EXPECT_EQ(p.Shape(), (std::vector<int64_t>{3, 2}));
  EXPECT_EQ(p.At({0, 1}), 4.0f);
  EXPECT_EQ(p.At({2, 0}), 3.0f);
}

TEST(OpsShape, Permute3d) {
  Tensor a = Tensor::FromVector({2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  Tensor p = Permute(a, {2, 0, 1});
  EXPECT_EQ(p.Shape(), (std::vector<int64_t>{2, 2, 2}));
  // p[k][i][j] == a[i][j][k]
  EXPECT_EQ(p.At({1, 0, 1}), a.At({0, 1, 1}));
  EXPECT_EQ(p.At({0, 1, 0}), a.At({1, 0, 0}));
}

TEST(OpsShape, TransposeIsPermute) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a, 0, 1);
  EXPECT_EQ(t.At({2, 1}), 6.0f);
}

TEST(OpsShape, SqueezeUnsqueeze) {
  Tensor a = Tensor::Ones({3});
  Tensor u = Unsqueeze(a, 0);
  EXPECT_EQ(u.Shape(), (std::vector<int64_t>{1, 3}));
  Tensor u2 = Unsqueeze(a, -1);
  EXPECT_EQ(u2.Shape(), (std::vector<int64_t>{3, 1}));
  EXPECT_EQ(Squeeze(u, 0).Shape(), (std::vector<int64_t>{3}));
}

TEST(OpsShape, NarrowSlab) {
  Tensor a = Tensor::FromVector({4, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  Tensor n = Narrow(a, 0, 1, 2);
  EXPECT_EQ(n.Shape(), (std::vector<int64_t>{2, 2}));
  EXPECT_EQ(n.At({0, 0}), 2.0f);
  EXPECT_EQ(n.At({1, 1}), 5.0f);
  Tensor m = Narrow(a, 1, 1, 1);
  EXPECT_EQ(m.At({3, 0}), 7.0f);
}

TEST(OpsShape, CatAlongDims) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = Cat({a, b}, 0);
  EXPECT_EQ(c.Shape(), (std::vector<int64_t>{3, 2}));
  EXPECT_EQ(c.At({2, 1}), 6.0f);

  Tensor d = Cat({b, b}, 1);
  EXPECT_EQ(d.Shape(), (std::vector<int64_t>{2, 4}));
  EXPECT_EQ(d.At({1, 3}), 6.0f);
}

TEST(OpsShape, StackAddsDim) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = Tensor::FromVector({2}, {3, 4});
  Tensor s = Stack({a, b}, 0);
  EXPECT_EQ(s.Shape(), (std::vector<int64_t>{2, 2}));
  EXPECT_EQ(s.At({1, 0}), 3.0f);
}

TEST(OpsShape, IndexSelectGathersRows) {
  Tensor a = Tensor::FromVector({3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor g = IndexSelect(a, 0, {2, 0, 2});
  EXPECT_EQ(g.Shape(), (std::vector<int64_t>{3, 2}));
  EXPECT_EQ(g.At({0, 0}), 20.0f);
  EXPECT_EQ(g.At({1, 1}), 1.0f);
  EXPECT_EQ(g.At({2, 0}), 20.0f);
}

TEST(OpsShape, BroadcastToMaterializes) {
  Tensor a = Tensor::FromVector({1, 2}, {3, 4});
  Tensor b = BroadcastTo(a, {3, 2});
  EXPECT_EQ(b.Shape(), (std::vector<int64_t>{3, 2}));
  EXPECT_EQ(b.At({2, 1}), 4.0f);
}

// -- MatMul ---------------------------------------------------------------------

TEST(OpsMatMul, TwoByTwo) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.At({0, 0}), 19.0f);
  EXPECT_EQ(c.At({0, 1}), 22.0f);
  EXPECT_EQ(c.At({1, 0}), 43.0f);
  EXPECT_EQ(c.At({1, 1}), 50.0f);
}

TEST(OpsMatMul, RectangularShapes) {
  Tensor a = Tensor::Ones({3, 4});
  Tensor b = Tensor::Ones({4, 5});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.Shape(), (std::vector<int64_t>{3, 5}));
  EXPECT_EQ(c.At({2, 4}), 4.0f);
}

TEST(OpsMatMul, BatchedTimesBatched) {
  Tensor a = Tensor::FromVector({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2, 1}, {1, 1, 10, 10});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.Shape(), (std::vector<int64_t>{2, 1, 1}));
  EXPECT_EQ(c.At(static_cast<int64_t>(0)), 3.0f);
  EXPECT_EQ(c.At(1), 70.0f);
}

TEST(OpsMatMul, BatchedTimesShared) {
  Tensor a = Tensor::FromVector({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {1, 0, 0, 1});  // identity
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.Shape(), (std::vector<int64_t>{2, 1, 2}));
  EXPECT_EQ(c.At(3), 4.0f);
}

// -- Softmax ----------------------------------------------------------------------

TEST(OpsSoftmax, RowsSumToOne) {
  Rng rng(4);
  Tensor a = Tensor::Randn({5, 7}, rng);
  Tensor s = Softmax(a, 1);
  for (int64_t i = 0; i < 5; ++i) {
    float total = 0.0f;
    for (int64_t j = 0; j < 7; ++j) {
      const float v = s.At({i, j});
      EXPECT_GT(v, 0.0f);
      total += v;
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(OpsSoftmax, StableWithLargeInputs) {
  Tensor a = Tensor::FromVector({1, 2}, {1000.0f, 1001.0f});
  Tensor s = Softmax(a, 1);
  EXPECT_NEAR(s.At(static_cast<int64_t>(0)) + s.At(1), 1.0f, 1e-6f);
  EXPECT_GT(s.At(1), s.At(static_cast<int64_t>(0)));
}

// -- Conv ---------------------------------------------------------------------------

TEST(OpsConv, Conv2dIdentityKernel) {
  Tensor input = Tensor::FromVector({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  // 3x3 kernel with 1 at the center behaves as identity under same-padding.
  std::vector<float> k(9, 0.0f);
  k[4] = 1.0f;
  Tensor weight = Tensor::FromVector({1, 1, 3, 3}, k);
  Tensor out = Conv2d(input, weight, Tensor(), 1, 1);
  EXPECT_EQ(out.Shape(), (std::vector<int64_t>{1, 1, 3, 3}));
  for (int64_t i = 0; i < 9; ++i) EXPECT_EQ(out.At(i), input.At(i));
}

TEST(OpsConv, Conv2dSumKernelCountsNeighbors) {
  Tensor input = Tensor::Ones({1, 1, 3, 3});
  Tensor weight = Tensor::Ones({1, 1, 3, 3});
  Tensor out = Conv2d(input, weight, Tensor(), 1, 1);
  EXPECT_EQ(out.At({0, 0, 1, 1}), 9.0f);  // center sees all 9
  EXPECT_EQ(out.At({0, 0, 0, 0}), 4.0f);  // corner sees 4
  EXPECT_EQ(out.At({0, 0, 0, 1}), 6.0f);  // edge sees 6
}

TEST(OpsConv, Conv2dBiasApplied) {
  Tensor input = Tensor::Zeros({1, 1, 2, 2});
  Tensor weight = Tensor::Ones({1, 1, 1, 1});
  Tensor bias = Tensor::FromVector({1}, {3.5f});
  Tensor out = Conv2d(input, weight, bias, 0, 0);
  EXPECT_EQ(out.At({0, 0, 1, 1}), 3.5f);
}

TEST(OpsConv, Conv2dMultiChannel) {
  // Two input channels summed by a 1x1 kernel of ones.
  Tensor input = Tensor::FromVector({1, 2, 1, 2}, {1, 2, 10, 20});
  Tensor weight = Tensor::Ones({1, 2, 1, 1});
  Tensor out = Conv2d(input, weight, Tensor(), 0, 0);
  EXPECT_EQ(out.Shape(), (std::vector<int64_t>{1, 1, 1, 2}));
  EXPECT_EQ(out.At(static_cast<int64_t>(0)), 11.0f);
  EXPECT_EQ(out.At(1), 22.0f);
}

TEST(OpsConv, Conv2dValidPaddingShrinks) {
  Tensor input = Tensor::Ones({1, 1, 4, 5});
  Tensor weight = Tensor::Ones({1, 1, 3, 3});
  Tensor out = Conv2d(input, weight, Tensor(), 0, 0);
  EXPECT_EQ(out.Shape(), (std::vector<int64_t>{1, 1, 2, 3}));
  EXPECT_EQ(out.At(static_cast<int64_t>(0)), 9.0f);
}

TEST(OpsConv, Conv1dMovingSum) {
  Tensor input = Tensor::FromVector({1, 1, 4}, {1, 2, 3, 4});
  Tensor weight = Tensor::Ones({1, 1, 3});
  Tensor out = Conv1d(input, weight, Tensor(), 1);
  EXPECT_EQ(out.Shape(), (std::vector<int64_t>{1, 1, 4}));
  EXPECT_EQ(out.At(static_cast<int64_t>(0)), 3.0f);   // 0+1+2
  EXPECT_EQ(out.At(1), 6.0f);                         // 1+2+3
  EXPECT_EQ(out.At(3), 7.0f);                         // 3+4+0
}

// -- Losses & misc -------------------------------------------------------------------

TEST(OpsLoss, MseAndSumOfSquares) {
  Tensor pred = Tensor::FromVector({2}, {1, 3});
  Tensor target = Tensor::FromVector({2}, {0, 1});
  EXPECT_NEAR(MseLoss(pred, target).Item(), 2.5f, 1e-6f);
  EXPECT_NEAR(SquaredErrorSum(pred, target).Item(), 5.0f, 1e-6f);
}

TEST(OpsMisc, L2NormalizeRowsUnitNorm) {
  Tensor a = Tensor::FromVector({2, 2}, {3, 4, 0, 5});
  Tensor n = L2NormalizeRows(a);
  EXPECT_NEAR(n.At({0, 0}), 0.6f, 1e-5f);
  EXPECT_NEAR(n.At({0, 1}), 0.8f, 1e-5f);
  EXPECT_NEAR(n.At({1, 1}), 1.0f, 1e-5f);
}

TEST(OpsMisc, DropoutEvalIsIdentity) {
  Rng rng(5);
  Tensor a = Tensor::Ones({10});
  Tensor d = Dropout(a, 0.5f, rng, /*training=*/false);
  for (float v : d.Data()) EXPECT_EQ(v, 1.0f);
}

TEST(OpsMisc, DropoutTrainZeroesAndScales) {
  Rng rng(6);
  Tensor a = Tensor::Ones({1000});
  Tensor d = Dropout(a, 0.5f, rng, /*training=*/true);
  int zeros = 0;
  for (float v : d.Data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 2.0f, 1e-6f);
    }
  }
  EXPECT_GT(zeros, 350);
  EXPECT_LT(zeros, 650);
}

}  // namespace
}  // namespace sthsl
