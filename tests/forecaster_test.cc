// Tests for the Forecaster interface utilities and the evaluation driver.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "baselines/classical.h"
#include "core/forecaster.h"
#include "data/generator.h"
#include "tensor/ops.h"

namespace sthsl {
namespace {

CrimeDataset SmallCity(uint64_t seed = 77) {
  CrimeGenConfig gen;
  gen.rows = 3;
  gen.cols = 3;
  gen.days = 80;
  gen.num_zones = 2;
  gen.category_totals = {250, 600, 260, 300};
  gen.seed = seed;
  return GenerateCrimeData(gen);
}

// A forecaster that always predicts a constant, for driver-level tests.
class ConstantForecaster : public Forecaster {
 public:
  explicit ConstantForecaster(float value) : value_(value) {}
  std::string Name() const override { return "Constant"; }
  void Fit(const CrimeDataset& data, int64_t) override {
    regions_ = data.num_regions();
    categories_ = data.num_categories();
  }
  Tensor PredictDay(const CrimeDataset&, int64_t) override {
    return Tensor::Full({regions_, categories_}, value_);
  }

 private:
  float value_;
  int64_t regions_ = 0;
  int64_t categories_ = 0;
};

TEST(EvaluateForecasterTest, AddsOneDayPerTestDay) {
  CrimeDataset data = SmallCity();
  ConstantForecaster model(1.0f);
  model.Fit(data, 70);
  CrimeMetrics metrics = EvaluateForecaster(model, data, 70, 80);
  EXPECT_EQ(metrics.days_added(), 10);
}

TEST(EvaluateForecasterTest, ConstantOnePredictorMapeIdentity) {
  // Predicting exactly 1 everywhere: APE on a truth entry v is |1-v|/v.
  CrimeDataset data = SmallCity();
  ConstantForecaster model(1.0f);
  model.Fit(data, 70);
  CrimeMetrics metrics = EvaluateForecaster(model, data, 70, 80);
  double expected_ape = 0.0;
  int64_t entries = 0;
  for (int64_t t = 70; t < 80; ++t) {
    Tensor truth = data.TargetDay(t);
    for (int64_t i = 0; i < truth.Numel(); ++i) {
      const float v = truth.At(i);
      if (v > 0.0f) {
        expected_ape += std::fabs(1.0f - v) / v;
        ++entries;
      }
    }
  }
  ASSERT_GT(entries, 0);
  EXPECT_NEAR(metrics.Overall().mape, expected_ape / entries, 1e-6);
}

TEST(EvaluateForecasterTest, RejectsInvalidRanges) {
  CrimeDataset data = SmallCity();
  ConstantForecaster model(0.0f);
  model.Fit(data, 70);
  EXPECT_DEATH(EvaluateForecaster(model, data, 70, 70), "invalid test range");
  EXPECT_DEATH(EvaluateForecaster(model, data, 70, 999),
               "invalid test range");
}

TEST(ForecasterZoo, ClassicalModelsAreDeterministic) {
  CrimeDataset data = SmallCity();
  for (int variant = 0; variant < 3; ++variant) {
    std::unique_ptr<Forecaster> a;
    std::unique_ptr<Forecaster> b;
    if (variant == 0) {
      a = std::make_unique<HistoricalAverage>();
      b = std::make_unique<HistoricalAverage>();
    } else if (variant == 1) {
      a = std::make_unique<Arima>();
      b = std::make_unique<Arima>();
    } else {
      a = std::make_unique<Svr>();
      b = std::make_unique<Svr>();
    }
    a->Fit(data, 70);
    b->Fit(data, 70);
    EXPECT_EQ(a->PredictDay(data, 75).Data(), b->PredictDay(data, 75).Data())
        << a->Name();
  }
}

TEST(ForecasterZoo, ArimaSurvivesAllZeroSeries) {
  // An all-zero city: every series is degenerate; predictions must be 0.
  CrimeDataset data("zero", 2, 2, {"A"}, Tensor::Zeros({4, 50, 1}));
  Arima arima;
  arima.Fit(data, 40);
  Tensor pred = arima.PredictDay(data, 45);
  for (float v : pred.Data()) EXPECT_EQ(v, 0.0f);
}

TEST(ForecasterZoo, ArimaClampsExplosiveSeries) {
  // Geometric growth produces explosive AR fits; the stability guard and
  // the forecast clamp must keep the prediction bounded.
  std::vector<float> counts(60);
  float value = 1.0f;
  for (auto& v : counts) {
    v = value;
    value *= 1.3f;
  }
  CrimeDataset data("boom", 1, 1, {"A"},
                    Tensor::FromVector({1, 60, 1}, counts));
  Arima arima;
  arima.Fit(data, 50);
  Tensor pred = arima.PredictDay(data, 55);
  EXPECT_TRUE(std::isfinite(pred.At({0, 0})));
  // Bounded by 3 * max-observed + 5.
  EXPECT_LE(pred.At({0, 0}), 3.0f * counts[49] + 5.0f + 1.0f);
}

}  // namespace
}  // namespace sthsl
