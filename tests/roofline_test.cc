// Tests for the roofline join (util/obs/roofline): the per-entry math against
// hand-computed expectations, degenerate-input guards, the profiler join that
// splits forward and backward samples, and the BENCH_roofline.json rendering.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/obs/calibrate.h"
#include "util/obs/obs.h"
#include "util/obs/roofline.h"

namespace sthsl {
namespace {

obs::MachinePeaks TestPeaks() {
  obs::MachinePeaks peaks;
  peaks.gflops_1t = 10.0;  // compute roof at 4 threads: 40 GFLOP/s
  peaks.gbps_1t = 5.0;     // ridge point at 4 threads: 8 flop/byte
  peaks.hardware_threads = 4;
  peaks.cpu_model = "Test CPU";
  peaks.created_utc = "2026-08-08T00:00:00Z";
  return peaks;
}

TEST(RooflineTest, ComputeRoofScalesWithThreads) {
  const obs::MachinePeaks peaks = TestPeaks();
  EXPECT_DOUBLE_EQ(obs::ComputeRoofGflops(peaks, 4), 40.0);
  EXPECT_DOUBLE_EQ(obs::ComputeRoofGflops(peaks, 1), 10.0);
  // Non-positive thread counts clamp to one, never zero the roof.
  EXPECT_DOUBLE_EQ(obs::ComputeRoofGflops(peaks, 0), 10.0);
}

TEST(RooflineTest, ComputeBoundEntryHandComputed) {
  const obs::MachinePeaks peaks = TestPeaks();
  // 1e9 flops over 1e8 bytes in 0.1 s: intensity 10 >= ridge 8.
  const obs::RooflineEntry e = obs::MakeRooflineEntry(
      "gemm", 3, 1000000000, 100000000, 100000.0, peaks, 4);
  EXPECT_EQ(e.name, "gemm");
  EXPECT_EQ(e.calls, 3);
  EXPECT_DOUBLE_EQ(e.intensity, 10.0);
  EXPECT_DOUBLE_EQ(e.achieved_gflops, 10.0);
  EXPECT_DOUBLE_EQ(e.achieved_gbps, 1.0);
  EXPECT_TRUE(e.compute_bound);
  // Compute roof (40) is below intensity * memory roof (50).
  EXPECT_DOUBLE_EQ(e.roof_gflops, 40.0);
  EXPECT_DOUBLE_EQ(e.pct_of_roof, 25.0);
}

TEST(RooflineTest, MemoryBoundEntryHandComputed) {
  const obs::MachinePeaks peaks = TestPeaks();
  // Intensity 0.5 < ridge 8: bandwidth-limited, roof = 0.5 * 5 GB/s.
  const obs::RooflineEntry e = obs::MakeRooflineEntry(
      "stream", 1, 1000000, 2000000, 1000.0, peaks, 4);
  EXPECT_DOUBLE_EQ(e.intensity, 0.5);
  // 1e6 flops in 1000 us = 1 GFLOP/s; 2e6 bytes in 1000 us = 2 GB/s.
  EXPECT_DOUBLE_EQ(e.achieved_gflops, 1.0);
  EXPECT_DOUBLE_EQ(e.achieved_gbps, 2.0);
  EXPECT_FALSE(e.compute_bound);
  EXPECT_DOUBLE_EQ(e.roof_gflops, 2.5);
  EXPECT_DOUBLE_EQ(e.pct_of_roof, 40.0);
}

TEST(RooflineTest, DegenerateInputsLeaveDerivedFieldsZero) {
  const obs::MachinePeaks peaks = TestPeaks();
  const obs::RooflineEntry no_flops =
      obs::MakeRooflineEntry("a", 1, 0, 100, 10.0, peaks, 4);
  EXPECT_DOUBLE_EQ(no_flops.pct_of_roof, 0.0);
  EXPECT_DOUBLE_EQ(no_flops.roof_gflops, 0.0);
  const obs::RooflineEntry no_bytes =
      obs::MakeRooflineEntry("b", 1, 100, 0, 10.0, peaks, 4);
  EXPECT_DOUBLE_EQ(no_bytes.intensity, 0.0);
  const obs::RooflineEntry no_time =
      obs::MakeRooflineEntry("c", 1, 100, 100, 0.0, peaks, 4);
  EXPECT_DOUBLE_EQ(no_time.achieved_gflops, 0.0);
  obs::MachinePeaks invalid;  // never calibrated
  const obs::RooflineEntry no_peaks =
      obs::MakeRooflineEntry("d", 1, 100, 100, 10.0, invalid, 4);
  EXPECT_DOUBLE_EQ(no_peaks.pct_of_roof, 0.0);
}

TEST(RooflineTest, BuildSplitsForwardAndBackwardAndSkipsUnmodeled) {
  const obs::MachinePeaks peaks = TestPeaks();
  obs::OpProfile matmul;
  matmul.name = "matmul";
  matmul.forward_calls = 2;
  matmul.forward_us = 100.0;
  matmul.forward_flops = 1000;
  matmul.bytes_touched = 400;
  matmul.backward_calls = 2;
  matmul.backward_us = 200.0;
  matmul.backward_flops = 2000;
  matmul.backward_bytes = 800;
  obs::OpProfile reshape;  // movement op: no flop model, must be skipped
  reshape.name = "reshape";
  reshape.forward_calls = 5;
  reshape.forward_us = 10.0;

  const std::vector<obs::RooflineEntry> entries =
      obs::BuildRoofline({matmul, reshape}, peaks, 4);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "matmul");
  EXPECT_EQ(entries[0].flops, 1000);
  EXPECT_EQ(entries[0].bytes, 400);
  EXPECT_EQ(entries[1].name, "matmul.bwd");
  EXPECT_EQ(entries[1].calls, 2);
  EXPECT_EQ(entries[1].flops, 2000);
  EXPECT_EQ(entries[1].bytes, 800);
}

TEST(RooflineTest, JsonCarriesPeaksOpsAndCounterFallback) {
  const obs::MachinePeaks peaks = TestPeaks();
  obs::RooflineEntry with_counters = obs::MakeRooflineEntry(
      "gemm", 3, 1000000000, 100000000, 100000.0, peaks, 4);
  with_counters.counters.valid = true;
  with_counters.counters.cycles = 42;
  with_counters.counters.instructions = 84;
  with_counters.counters.l1d_misses = -1;  // failed sibling stays -1
  obs::RooflineEntry without_counters = obs::MakeRooflineEntry(
      "stream", 1, 1000000, 2000000, 1000.0, peaks, 4);

  const std::string json =
      obs::RooflineJson({with_counters, without_counters}, peaks, 4);
  EXPECT_NE(json.find("\"bench\":\"roofline\""), std::string::npos);
  EXPECT_NE(json.find("\"cpu_model\":\"Test CPU\""), std::string::npos);
  EXPECT_NE(json.find("\"compute_roof_gflops\":40"), std::string::npos);
  EXPECT_NE(json.find("\"memory_roof_gbps\":5"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"gemm\""), std::string::npos);
  EXPECT_NE(json.find("\"bound\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"bound\":\"memory\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{\"cycles\":42,\"instructions\":84,"
                      "\"l1d_misses\":-1"),
            std::string::npos);
  // Entries without a counter-isolated run serialize an explicit null.
  EXPECT_NE(json.find("\"counters\":null"), std::string::npos);
}

}  // namespace
}  // namespace sthsl
