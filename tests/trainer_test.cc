// Tests for the shared windowed trainer (NeuralForecaster): batching,
// EMA averaging, validation-based selection, early stopping, determinism.

#include <cmath>

#include <gtest/gtest.h>

#include "core/forecaster.h"
#include "core/neural_forecaster.h"
#include "data/generator.h"
#include "nn/layers.h"
#include "tensor/ops.h"

namespace sthsl {
namespace {

// Minimal neural forecaster: linear map from the window mean to the next
// day, exposing the full trainer machinery with trivial model cost.
class TinyForecaster : public NeuralForecaster {
 public:
  explicit TinyForecaster(TrainConfig config)
      : NeuralForecaster(config) {}

  std::string Name() const override { return "Tiny"; }

 protected:
  void Prepare(const CrimeDataset& data, int64_t train_end) override {
    net_ = std::make_unique<Net>(data.num_categories(), rng_);
  }
  Tensor Forward(const Tensor& window, bool training) override {
    return net_->head.Forward(Mean(window, {1}));
  }
  Module* RootModule() override { return net_.get(); }

 private:
  struct Net : Module {
    Net(int64_t cats, Rng& rng) : head(cats, cats, rng) {
      RegisterModule("head", &head);
    }
    Linear head;
  };
  std::unique_ptr<Net> net_;
};

CrimeDataset SmallCity(uint64_t seed = 5) {
  CrimeGenConfig gen;
  gen.rows = 3;
  gen.cols = 3;
  gen.days = 120;
  gen.num_zones = 2;
  gen.category_totals = {300, 700, 320, 380};
  gen.seed = seed;
  return GenerateCrimeData(gen);
}

TrainConfig FastConfig() {
  TrainConfig config;
  config.window = 7;
  config.epochs = 10;
  config.max_steps_per_epoch = 8;
  config.batch_size = 2;
  config.validation_days = 14;
  config.seed = 3;
  return config;
}

TEST(TrainerTest, FitProducesNonNegativeFinitePredictions) {
  CrimeDataset data = SmallCity();
  TinyForecaster model(FastConfig());
  model.Fit(data, 100);
  Tensor pred = model.PredictDay(data, 110);
  for (float v : pred.Data()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0f);
  }
}

TEST(TrainerTest, EpochTimesRecorded) {
  CrimeDataset data = SmallCity();
  TinyForecaster model(FastConfig());
  model.Fit(data, 100);
  EXPECT_EQ(model.EpochSeconds().size(), 10u);
  for (double s : model.EpochSeconds()) EXPECT_GE(s, 0.0);
}

TEST(TrainerTest, EarlyStoppingCutsEpochs) {
  CrimeDataset data = SmallCity();
  TrainConfig config = FastConfig();
  config.epochs = 50;
  config.early_stop_patience = 2;
  config.validation_every = 1;
  TinyForecaster model(config);
  model.Fit(data, 100);
  // A linear model converges almost immediately; far fewer than 50 epochs.
  EXPECT_LT(model.EpochSeconds().size(), 50u);
}

TEST(TrainerTest, DeterministicAcrossRuns) {
  CrimeDataset data = SmallCity();
  TinyForecaster a(FastConfig());
  TinyForecaster b(FastConfig());
  a.Fit(data, 100);
  b.Fit(data, 100);
  EXPECT_EQ(a.PredictDay(data, 105).Data(), b.PredictDay(data, 105).Data());
}

TEST(TrainerTest, LearnsBetterThanUntrained) {
  CrimeDataset data = SmallCity();
  TrainConfig config = FastConfig();
  config.epochs = 25;
  TinyForecaster trained(config);
  trained.Fit(data, 100);
  CrimeMetrics trained_metrics =
      EvaluateForecaster(trained, data, 100, 120);

  config.epochs = 1;
  config.max_steps_per_epoch = 1;
  config.validation_days = 0;
  TinyForecaster untrained(config);
  untrained.Fit(data, 100);
  CrimeMetrics untrained_metrics =
      EvaluateForecaster(untrained, data, 100, 120);

  EXPECT_LT(trained_metrics.Overall().mae,
            untrained_metrics.Overall().mae);
}

TEST(TrainerTest, EmaDisabledStillTrains) {
  CrimeDataset data = SmallCity();
  TrainConfig config = FastConfig();
  config.ema_decay = 0.0f;
  config.validation_days = 0;
  config.cosine_lr = false;
  TinyForecaster model(config);
  model.Fit(data, 100);
  Tensor pred = model.PredictDay(data, 105);
  for (float v : pred.Data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(TrainerTest, ValidationDaysClampedForShortDatasets) {
  // train_end barely above the window: validation must clamp, not abort.
  CrimeDataset data = SmallCity();
  TrainConfig config = FastConfig();
  config.window = 7;
  config.validation_days = 1000;  // absurd; must be clamped internally
  TinyForecaster model(config);
  model.Fit(data, 20);
  EXPECT_EQ(model.EpochSeconds().size(), 10u);
}

TEST(TrainerTest, RejectsImpossibleWindow) {
  CrimeDataset data = SmallCity();
  TrainConfig config = FastConfig();
  config.window = 30;
  TinyForecaster model(config);
  EXPECT_DEATH(model.Fit(data, 20), "incompatible with window");
}

}  // namespace
}  // namespace sthsl
