file(REMOVE_RECURSE
  "CMakeFiles/param_ops_test.dir/param_ops_test.cc.o"
  "CMakeFiles/param_ops_test.dir/param_ops_test.cc.o.d"
  "param_ops_test"
  "param_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
