# Empty dependencies file for param_ops_test.
# This may be replaced when dependencies are built.
