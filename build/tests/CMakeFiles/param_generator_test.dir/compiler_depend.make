# Empty compiler generated dependencies file for param_generator_test.
# This may be replaced when dependencies are built.
