file(REMOVE_RECURSE
  "CMakeFiles/param_generator_test.dir/param_generator_test.cc.o"
  "CMakeFiles/param_generator_test.dir/param_generator_test.cc.o.d"
  "param_generator_test"
  "param_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
