# Empty dependencies file for ssl_losses_test.
# This may be replaced when dependencies are built.
