file(REMOVE_RECURSE
  "CMakeFiles/ssl_losses_test.dir/ssl_losses_test.cc.o"
  "CMakeFiles/ssl_losses_test.dir/ssl_losses_test.cc.o.d"
  "ssl_losses_test"
  "ssl_losses_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssl_losses_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
