# Empty dependencies file for sthsl_model_test.
# This may be replaced when dependencies are built.
