file(REMOVE_RECURSE
  "CMakeFiles/sthsl_model_test.dir/sthsl_model_test.cc.o"
  "CMakeFiles/sthsl_model_test.dir/sthsl_model_test.cc.o.d"
  "sthsl_model_test"
  "sthsl_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sthsl_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
