file(REMOVE_RECURSE
  "CMakeFiles/incidents_test.dir/incidents_test.cc.o"
  "CMakeFiles/incidents_test.dir/incidents_test.cc.o.d"
  "incidents_test"
  "incidents_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incidents_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
