# Empty dependencies file for incidents_test.
# This may be replaced when dependencies are built.
