file(REMOVE_RECURSE
  "CMakeFiles/multi_step_test.dir/multi_step_test.cc.o"
  "CMakeFiles/multi_step_test.dir/multi_step_test.cc.o.d"
  "multi_step_test"
  "multi_step_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_step_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
