# Empty dependencies file for bench_fig6_sparsity_robustness.
# This may be replaced when dependencies are built.
