file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_ssl_ablation.dir/bench_table4_ssl_ablation.cc.o"
  "CMakeFiles/bench_table4_ssl_ablation.dir/bench_table4_ssl_ablation.cc.o.d"
  "CMakeFiles/bench_table4_ssl_ablation.dir/common.cc.o"
  "CMakeFiles/bench_table4_ssl_ablation.dir/common.cc.o.d"
  "bench_table4_ssl_ablation"
  "bench_table4_ssl_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_ssl_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
