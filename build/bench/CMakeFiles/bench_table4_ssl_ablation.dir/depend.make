# Empty dependencies file for bench_table4_ssl_ablation.
# This may be replaced when dependencies are built.
