# Empty compiler generated dependencies file for bench_fig4_error_maps.
# This may be replaced when dependencies are built.
