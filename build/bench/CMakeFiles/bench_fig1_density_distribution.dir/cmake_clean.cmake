file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_density_distribution.dir/bench_fig1_density_distribution.cc.o"
  "CMakeFiles/bench_fig1_density_distribution.dir/bench_fig1_density_distribution.cc.o.d"
  "CMakeFiles/bench_fig1_density_distribution.dir/common.cc.o"
  "CMakeFiles/bench_fig1_density_distribution.dir/common.cc.o.d"
  "bench_fig1_density_distribution"
  "bench_fig1_density_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_density_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
