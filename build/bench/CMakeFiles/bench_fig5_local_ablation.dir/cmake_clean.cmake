file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_local_ablation.dir/bench_fig5_local_ablation.cc.o"
  "CMakeFiles/bench_fig5_local_ablation.dir/bench_fig5_local_ablation.cc.o.d"
  "CMakeFiles/bench_fig5_local_ablation.dir/common.cc.o"
  "CMakeFiles/bench_fig5_local_ablation.dir/common.cc.o.d"
  "bench_fig5_local_ablation"
  "bench_fig5_local_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_local_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
