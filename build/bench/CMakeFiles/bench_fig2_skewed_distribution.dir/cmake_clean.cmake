file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_skewed_distribution.dir/bench_fig2_skewed_distribution.cc.o"
  "CMakeFiles/bench_fig2_skewed_distribution.dir/bench_fig2_skewed_distribution.cc.o.d"
  "CMakeFiles/bench_fig2_skewed_distribution.dir/common.cc.o"
  "CMakeFiles/bench_fig2_skewed_distribution.dir/common.cc.o.d"
  "bench_fig2_skewed_distribution"
  "bench_fig2_skewed_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_skewed_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
