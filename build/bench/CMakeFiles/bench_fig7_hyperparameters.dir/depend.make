# Empty dependencies file for bench_fig7_hyperparameters.
# This may be replaced when dependencies are built.
