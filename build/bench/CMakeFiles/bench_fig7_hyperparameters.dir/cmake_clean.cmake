file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_hyperparameters.dir/bench_fig7_hyperparameters.cc.o"
  "CMakeFiles/bench_fig7_hyperparameters.dir/bench_fig7_hyperparameters.cc.o.d"
  "CMakeFiles/bench_fig7_hyperparameters.dir/common.cc.o"
  "CMakeFiles/bench_fig7_hyperparameters.dir/common.cc.o.d"
  "bench_fig7_hyperparameters"
  "bench_fig7_hyperparameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_hyperparameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
