file(REMOVE_RECURSE
  "CMakeFiles/sthsl_cli.dir/sthsl_cli.cc.o"
  "CMakeFiles/sthsl_cli.dir/sthsl_cli.cc.o.d"
  "sthsl_cli"
  "sthsl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sthsl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
