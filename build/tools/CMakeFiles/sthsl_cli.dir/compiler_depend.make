# Empty compiler generated dependencies file for sthsl_cli.
# This may be replaced when dependencies are built.
