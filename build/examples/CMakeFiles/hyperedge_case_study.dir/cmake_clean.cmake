file(REMOVE_RECURSE
  "CMakeFiles/hyperedge_case_study.dir/hyperedge_case_study.cpp.o"
  "CMakeFiles/hyperedge_case_study.dir/hyperedge_case_study.cpp.o.d"
  "hyperedge_case_study"
  "hyperedge_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperedge_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
