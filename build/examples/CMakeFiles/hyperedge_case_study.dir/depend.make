# Empty dependencies file for hyperedge_case_study.
# This may be replaced when dependencies are built.
