file(REMOVE_RECURSE
  "CMakeFiles/crime_forecast_city.dir/crime_forecast_city.cpp.o"
  "CMakeFiles/crime_forecast_city.dir/crime_forecast_city.cpp.o.d"
  "crime_forecast_city"
  "crime_forecast_city.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crime_forecast_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
