# Empty dependencies file for crime_forecast_city.
# This may be replaced when dependencies are built.
