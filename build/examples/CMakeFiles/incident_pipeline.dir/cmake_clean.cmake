file(REMOVE_RECURSE
  "CMakeFiles/incident_pipeline.dir/incident_pipeline.cpp.o"
  "CMakeFiles/incident_pipeline.dir/incident_pipeline.cpp.o.d"
  "incident_pipeline"
  "incident_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incident_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
