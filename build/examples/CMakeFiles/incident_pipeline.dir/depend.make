# Empty dependencies file for incident_pipeline.
# This may be replaced when dependencies are built.
