file(REMOVE_RECURSE
  "libsthsl.a"
)
