
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/attention_models.cc" "src/CMakeFiles/sthsl.dir/baselines/attention_models.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/baselines/attention_models.cc.o.d"
  "/root/repo/src/baselines/classical.cc" "src/CMakeFiles/sthsl.dir/baselines/classical.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/baselines/classical.cc.o.d"
  "/root/repo/src/baselines/graph_models.cc" "src/CMakeFiles/sthsl.dir/baselines/graph_models.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/baselines/graph_models.cc.o.d"
  "/root/repo/src/baselines/graph_utils.cc" "src/CMakeFiles/sthsl.dir/baselines/graph_utils.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/baselines/graph_utils.cc.o.d"
  "/root/repo/src/baselines/registry.cc" "src/CMakeFiles/sthsl.dir/baselines/registry.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/baselines/registry.cc.o.d"
  "/root/repo/src/baselines/st_resnet.cc" "src/CMakeFiles/sthsl.dir/baselines/st_resnet.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/baselines/st_resnet.cc.o.d"
  "/root/repo/src/baselines/stshn.cc" "src/CMakeFiles/sthsl.dir/baselines/stshn.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/baselines/stshn.cc.o.d"
  "/root/repo/src/core/ablation.cc" "src/CMakeFiles/sthsl.dir/core/ablation.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/core/ablation.cc.o.d"
  "/root/repo/src/core/forecaster.cc" "src/CMakeFiles/sthsl.dir/core/forecaster.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/core/forecaster.cc.o.d"
  "/root/repo/src/core/multi_step.cc" "src/CMakeFiles/sthsl.dir/core/multi_step.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/core/multi_step.cc.o.d"
  "/root/repo/src/core/neural_forecaster.cc" "src/CMakeFiles/sthsl.dir/core/neural_forecaster.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/core/neural_forecaster.cc.o.d"
  "/root/repo/src/core/sthsl_model.cc" "src/CMakeFiles/sthsl.dir/core/sthsl_model.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/core/sthsl_model.cc.o.d"
  "/root/repo/src/data/crime_dataset.cc" "src/CMakeFiles/sthsl.dir/data/crime_dataset.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/data/crime_dataset.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/CMakeFiles/sthsl.dir/data/generator.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/data/generator.cc.o.d"
  "/root/repo/src/data/incidents.cc" "src/CMakeFiles/sthsl.dir/data/incidents.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/data/incidents.cc.o.d"
  "/root/repo/src/data/stats.cc" "src/CMakeFiles/sthsl.dir/data/stats.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/data/stats.cc.o.d"
  "/root/repo/src/metrics/metrics.cc" "src/CMakeFiles/sthsl.dir/metrics/metrics.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/metrics/metrics.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/sthsl.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/nn/layers.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/sthsl.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/serialization.cc" "src/CMakeFiles/sthsl.dir/nn/serialization.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/nn/serialization.cc.o.d"
  "/root/repo/src/tensor/conv.cc" "src/CMakeFiles/sthsl.dir/tensor/conv.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/tensor/conv.cc.o.d"
  "/root/repo/src/tensor/matmul.cc" "src/CMakeFiles/sthsl.dir/tensor/matmul.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/tensor/matmul.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/CMakeFiles/sthsl.dir/tensor/ops.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/optimizer.cc" "src/CMakeFiles/sthsl.dir/tensor/optimizer.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/tensor/optimizer.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/sthsl.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/sthsl.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/util/csv.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/sthsl.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/sthsl.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/sthsl.dir/util/status.cc.o" "gcc" "src/CMakeFiles/sthsl.dir/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
