# Empty dependencies file for sthsl.
# This may be replaced when dependencies are built.
