// Interactive ablation explorer: train any ST-HSL variant (or a custom
// combination of switches) from the command line and report its accuracy —
// the tool behind the paper's RQ2 analyses.
//
//   ./ablation_explorer --variant "w/o ConL"
//   ./ablation_explorer --no-infomax --no-contrastive --dim 8 --hyper 16
//   ./ablation_explorer --list

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/ablation.h"
#include "core/forecaster.h"
#include "core/sthsl_model.h"
#include "data/generator.h"

using namespace sthsl;

namespace {

void PrintUsage() {
  std::printf(
      "usage: ablation_explorer [options]\n"
      "  --list                 list named paper variants and exit\n"
      "  --variant NAME         use a named variant (e.g. \"w/o ConL\")\n"
      "  --city nyc|chicago     dataset preset (default nyc)\n"
      "  --dim N --hyper N --kernel N    architecture knobs\n"
      "  --epochs N --window N  training knobs\n"
      "  --no-spatial --no-temporal --no-category --no-local\n"
      "  --no-hyper --no-globaltem --no-infomax --no-contrastive\n"
      "  --predict local|global|fusion   prediction source\n");
}

}  // namespace

int main(int argc, char** argv) {
  SthslConfig config;
  config.num_hyperedges = 32;
  config.train.window = 14;
  config.train.epochs = 12;
  config.train.max_steps_per_epoch = 16;
  std::string city = "nyc";
  std::string variant;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        PrintUsage();
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      std::printf("local-encoder variants (Fig. 5):\n");
      for (const auto& n : LocalEncoderVariantNames()) {
        std::printf("  %s\n", n.c_str());
      }
      std::printf("self-supervision variants (Table IV):\n");
      for (const auto& n : SslVariantNames()) std::printf("  %s\n", n.c_str());
      return 0;
    } else if (arg == "--variant") {
      variant = next();
    } else if (arg == "--city") {
      city = next();
    } else if (arg == "--dim") {
      config.dim = std::atoll(next());
    } else if (arg == "--hyper") {
      config.num_hyperedges = std::atoll(next());
    } else if (arg == "--kernel") {
      config.kernel_size = std::atoll(next());
    } else if (arg == "--epochs") {
      config.train.epochs = std::atoll(next());
    } else if (arg == "--window") {
      config.train.window = std::atoll(next());
    } else if (arg == "--no-spatial") {
      config.use_spatial_conv = false;
    } else if (arg == "--no-temporal") {
      config.use_temporal_conv = false;
    } else if (arg == "--no-category") {
      config.use_category_conv = false;
    } else if (arg == "--no-local") {
      config.use_local_encoder = false;
    } else if (arg == "--no-hyper") {
      config.use_hypergraph = false;
    } else if (arg == "--no-globaltem") {
      config.use_global_temporal = false;
    } else if (arg == "--no-infomax") {
      config.use_infomax = false;
    } else if (arg == "--no-contrastive") {
      config.use_contrastive = false;
    } else if (arg == "--predict") {
      const std::string source = next();
      config.prediction_source = source == "local"
                                     ? PredictionSource::kLocal
                                     : source == "fusion"
                                           ? PredictionSource::kFusion
                                           : PredictionSource::kGlobal;
    } else {
      PrintUsage();
      return arg == "--help" ? 0 : 1;
    }
  }

  if (!variant.empty()) config = AblationVariant(variant, config);

  CrimeDataset data = GenerateCrimeData(
      city == "chicago" ? ChicagoSmallPreset() : NycSmallPreset());
  const int64_t train_end = data.num_days() - data.num_days() / 8;

  const std::string name = variant.empty() ? "custom" : variant;
  std::printf("variant: %s on %s\n", name.c_str(), data.city_name().c_str());
  std::printf("  switches: spatial=%d temporal=%d category=%d local=%d "
              "hyper=%d globaltem=%d infomax=%d contrastive=%d predict=%s\n",
              config.use_spatial_conv, config.use_temporal_conv,
              config.use_category_conv, config.use_local_encoder,
              config.use_hypergraph, config.use_global_temporal,
              config.use_infomax, config.use_contrastive,
              config.prediction_source == PredictionSource::kGlobal
                  ? "global"
                  : config.prediction_source == PredictionSource::kLocal
                        ? "local"
                        : "fusion");

  SthslForecaster model(config, name);
  model.Fit(data, train_end);
  CrimeMetrics metrics =
      EvaluateForecaster(model, data, train_end, data.num_days());
  for (int64_t c = 0; c < data.num_categories(); ++c) {
    const EvalResult r = metrics.Category(c);
    std::printf("  %-10s MAE %.4f  MAPE %.4f\n",
                data.category_names()[static_cast<size_t>(c)].c_str(), r.mae,
                r.mape);
  }
  const EvalResult overall = metrics.Overall();
  std::printf("  %-10s MAE %.4f  MAPE %.4f\n", "overall", overall.mae,
              overall.mape);
  return 0;
}
