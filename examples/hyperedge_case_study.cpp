// Hyperedge interpretability tour (the paper's Fig. 8 / RQ5 analysis as a
// reusable tool): trains ST-HSL, then lets you inspect what the learnable
// hypergraph discovered — which regions each hyperedge ties together, how
// similar their crime patterns really are, and how the dependency structure
// compares to raw geography.
//
//   ./hyperedge_case_study [nyc|chicago] [num_edges_to_show]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "core/forecaster.h"
#include "core/sthsl_model.h"
#include "data/generator.h"

using namespace sthsl;

namespace {

double Correlation(const std::vector<double>& a,
                   const std::vector<double>& b) {
  const double n = static_cast<double>(a.size());
  const double ma = std::accumulate(a.begin(), a.end(), 0.0) / n;
  const double mb = std::accumulate(b.begin(), b.end(), 0.0) / n;
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  return (va <= 0.0 || vb <= 0.0) ? 0.0 : cov / std::sqrt(va * vb);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string city = argc > 1 ? argv[1] : "chicago";
  const int show_edges = argc > 2 ? std::atoi(argv[2]) : 4;

  CrimeDataset data = GenerateCrimeData(
      city == "nyc" ? NycSmallPreset() : ChicagoSmallPreset());
  const int64_t train_end = data.num_days() - data.num_days() / 8;

  SthslConfig config;
  config.num_hyperedges = 32;
  config.train.window = 14;
  config.train.epochs = 12;
  config.train.max_steps_per_epoch = 16;
  SthslForecaster model(config);
  std::printf("training ST-HSL on %s...\n", data.city_name().c_str());
  model.Fit(data, train_end);

  Tensor hyper = model.net()->hyperedge_weights();  // (H, R*C)
  const int64_t regions = data.num_regions();
  const int64_t cats = data.num_categories();

  auto relevance = [&](int64_t e, int64_t r) {
    double total = 0.0;
    for (int64_t c = 0; c < cats; ++c) {
      total += std::fabs(hyper.At({e, r * cats + c}));
    }
    return total;
  };
  auto series = [&](int64_t r) {
    std::vector<double> out(static_cast<size_t>(data.num_days()), 0.0);
    for (int64_t t = 0; t < data.num_days(); ++t) {
      for (int64_t c = 0; c < cats; ++c) out[static_cast<size_t>(t)] +=
          data.Count(r, t, c);
    }
    return out;
  };

  // Rank hyperedges by how concentrated their relevance is (interesting
  // hyperedges pick out a few regions instead of averaging everything).
  std::vector<std::pair<double, int64_t>> edge_order;
  for (int64_t e = 0; e < hyper.Size(0); ++e) {
    std::vector<double> scores(static_cast<size_t>(regions));
    double total = 0.0;
    for (int64_t r = 0; r < regions; ++r) {
      scores[static_cast<size_t>(r)] = relevance(e, r);
      total += scores[static_cast<size_t>(r)];
    }
    std::sort(scores.rbegin(), scores.rend());
    const double concentration =
        total > 0.0 ? (scores[0] + scores[1] + scores[2]) / total : 0.0;
    edge_order.emplace_back(concentration, e);
  }
  std::sort(edge_order.rbegin(), edge_order.rend());

  for (int i = 0; i < show_edges && i < static_cast<int>(edge_order.size());
       ++i) {
    const int64_t e = edge_order[static_cast<size_t>(i)].second;
    std::vector<int64_t> order(static_cast<size_t>(regions));
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + 3, order.end(),
                      [&](int64_t a, int64_t b) {
                        return relevance(e, a) > relevance(e, b);
                      });
    std::printf("\nhyperedge e%lld (top-3 concentration %.2f)\n",
                static_cast<long long>(e),
                edge_order[static_cast<size_t>(i)].first);
    std::vector<std::vector<double>> top_series;
    for (int k = 0; k < 3; ++k) {
      const int64_t r = order[static_cast<size_t>(k)];
      const auto s = series(r);
      const double daily =
          std::accumulate(s.begin(), s.end(), 0.0) / s.size();
      std::printf("  region %-3lld (row %lld, col %lld): relevance %.3f, "
                  "avg %.2f crimes/day, density %.2f\n",
                  static_cast<long long>(r),
                  static_cast<long long>(r / data.cols()),
                  static_cast<long long>(r % data.cols()), relevance(e, r),
                  daily, data.DensityDegree(r));
      top_series.push_back(s);
    }
    std::printf("  pairwise pattern correlation: %.3f %.3f %.3f\n",
                Correlation(top_series[0], top_series[1]),
                Correlation(top_series[0], top_series[2]),
                Correlation(top_series[1], top_series[2]));
    // Geographic spread: hyperedges may tie together distant regions.
    auto dist = [&](int64_t a, int64_t b) {
      const double dr = static_cast<double>(a / data.cols() - b / data.cols());
      const double dc = static_cast<double>(a % data.cols() - b % data.cols());
      return std::sqrt(dr * dr + dc * dc);
    };
    std::printf("  grid distances: %.1f %.1f %.1f (max possible %.1f)\n",
                dist(order[0], order[1]), dist(order[0], order[2]),
                dist(order[1], order[2]),
                std::sqrt(static_cast<double>(
                    data.rows() * data.rows() + data.cols() * data.cols())));
  }

  std::printf("\nInterpretation: hyperedges with high top-3 concentration act "
              "as learned\n\"functional zones\": their member regions show "
              "correlated crime patterns\neven when geographically distant — "
              "the global dependency the paper's\nlocal encoders cannot "
              "capture.\n");
  return 0;
}
