// Quickstart: generate a synthetic city, train ST-HSL, predict tomorrow's
// crime counts and report accuracy — the minimal end-to-end tour of the
// public API.
//
//   ./quickstart [seed]

#include <cstdio>
#include <cstdlib>

#include "core/forecaster.h"
#include "core/sthsl_model.h"
#include "data/generator.h"
#include "data/stats.h"

using namespace sthsl;

int main(int argc, char** argv) {
  // 1. Data: a compact synthetic city (see data/generator.h for what the
  //    generator plants: sparsity, spatial skew, functional zones, seasons).
  CrimeGenConfig gen;
  gen.city_name = "QuickCity";
  gen.rows = 6;
  gen.cols = 6;
  gen.days = 200;
  gen.category_totals = {1200, 3200, 1300, 1500};
  gen.seed = argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 42;
  CrimeDataset data = GenerateCrimeData(gen);
  std::printf("generated %s: %lld regions x %lld days x %lld categories "
              "(seed %llu)\n",
              data.city_name().c_str(),
              static_cast<long long>(data.num_regions()),
              static_cast<long long>(data.num_days()),
              static_cast<long long>(data.num_categories()),
              static_cast<unsigned long long>(gen.seed));

  // 2. Split: the paper's protocol — last 1/8 of days is the test period.
  const int64_t test_days = data.num_days() / 8;
  const int64_t train_end = data.num_days() - test_days;

  // 3. Model: ST-HSL with compact hyperparameters for a fast first run.
  SthslConfig config;
  config.dim = 8;
  config.num_hyperedges = 16;
  config.train.window = 14;
  config.train.epochs = 10;
  config.train.max_steps_per_epoch = 16;
  config.train.verbose = true;
  SthslForecaster model(config);

  std::printf("training ST-HSL on days [0, %lld)...\n",
              static_cast<long long>(train_end));
  model.Fit(data, train_end);

  // 4. Predict the first test day and show a few regions.
  Tensor prediction = model.PredictDay(data, train_end);
  Tensor truth = data.TargetDay(train_end);
  std::printf("\nday %lld, first 5 regions (predicted | actual):\n",
              static_cast<long long>(train_end));
  for (int64_t r = 0; r < 5 && r < data.num_regions(); ++r) {
    std::printf("  region %lld: ", static_cast<long long>(r));
    for (int64_t c = 0; c < data.num_categories(); ++c) {
      std::printf("%s %.2f|%.0f  ",
                  data.category_names()[static_cast<size_t>(c)].c_str(),
                  prediction.At({r, c}), truth.At({r, c}));
    }
    std::printf("\n");
  }

  // 5. Full test-period evaluation with the paper's masked MAE / MAPE.
  CrimeMetrics metrics =
      EvaluateForecaster(model, data, train_end, data.num_days());
  std::printf("\ntest period (%lld days):\n",
              static_cast<long long>(test_days));
  for (int64_t c = 0; c < data.num_categories(); ++c) {
    const EvalResult r = metrics.Category(c);
    std::printf("  %-10s MAE %.4f  MAPE %.4f  (%lld evaluated entries)\n",
                data.category_names()[static_cast<size_t>(c)].c_str(), r.mae,
                r.mape, static_cast<long long>(r.evaluated_entries));
  }
  const EvalResult overall = metrics.Overall();
  std::printf("  %-10s MAE %.4f  MAPE %.4f\n", "overall", overall.mae,
              overall.mape);
  return 0;
}
