// Production-style pipeline on *raw incident records* — the data shape the
// paper's preliminaries describe (<crime type, timestamp, lon, lat>):
//
//   raw incidents (CSV or synthesized)
//     -> grid rasterization (the paper's 3km x 3km map segmentation)
//     -> ST-HSL training with checkpointing
//     -> checkpoint reload into a fresh model
//     -> single-day evaluation + week-ahead iterated forecast.
//
//   ./incident_pipeline [--incidents raw.csv] [--checkpoint model.bin]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/forecaster.h"
#include "core/multi_step.h"
#include "core/sthsl_model.h"
#include "data/generator.h"
#include "data/incidents.h"
#include "nn/serialization.h"

using namespace sthsl;

int main(int argc, char** argv) {
  std::string incidents_path;
  std::string checkpoint_path = "/tmp/sthsl_incident_pipeline.ckpt";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--incidents") == 0) incidents_path = argv[i + 1];
    if (std::strcmp(argv[i], "--checkpoint") == 0) {
      checkpoint_path = argv[i + 1];
    }
  }

  // -- Stage 1: obtain raw incident records ---------------------------------
  GridSpec grid;
  grid.min_longitude = -74.3;
  grid.max_longitude = -73.7;
  grid.min_latitude = 40.5;
  grid.max_latitude = 40.9;
  grid.rows = 8;
  grid.cols = 8;
  const std::vector<std::string> categories = {"Burglary", "Larceny",
                                               "Robbery", "Assault"};
  std::vector<IncidentRecord> records;
  if (!incidents_path.empty()) {
    auto loaded = LoadIncidentsCsv(incidents_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load incidents: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    records = std::move(loaded.value());
    std::printf("loaded %zu raw incident records from %s\n", records.size(),
                incidents_path.c_str());
  } else {
    // No real feed available: synthesize point records from the calibrated
    // generator, so the full ingestion path still runs end to end.
    CrimeGenConfig gen = NycSmallPreset();
    gen.days = 240;
    CrimeDataset gridded = GenerateCrimeData(gen);
    Rng jitter_rng(2024);
    records = SynthesizeIncidents(gridded, grid, /*epoch_seconds=*/0,
                                  jitter_rng);
    std::printf("synthesized %zu raw incident records (no --incidents "
                "given)\n", records.size());
  }

  // -- Stage 2: rasterize to the (region, day, category) tensor --------------
  auto raster = RasterizeIncidents(records, grid, categories,
                                   /*epoch_seconds=*/0, /*num_days=*/240,
                                   "NYC-incidents");
  if (!raster.ok()) {
    std::fprintf(stderr, "rasterization failed: %s\n",
                 raster.status().ToString().c_str());
    return 1;
  }
  const CrimeDataset& data = raster.value().dataset;
  std::printf("rasterized: %lld accepted, %lld out-of-bounds, %lld unknown "
              "category\n",
              static_cast<long long>(raster.value().accepted),
              static_cast<long long>(raster.value().dropped_out_of_bounds),
              static_cast<long long>(
                  raster.value().dropped_unknown_category));

  // -- Stage 3: train and checkpoint -----------------------------------------
  const int64_t train_end = data.num_days() - data.num_days() / 8;
  SthslConfig config;
  config.num_hyperedges = 32;
  config.train.window = 14;
  config.train.epochs = 10;
  config.train.max_steps_per_epoch = 16;
  SthslForecaster model(config);
  std::printf("training ST-HSL on days [0, %lld)...\n",
              static_cast<long long>(train_end));
  model.Fit(data, train_end);
  Status saved = SaveCheckpoint(*model.net(), checkpoint_path);
  std::printf("checkpoint save: %s (%s)\n",
              saved.ok() ? "ok" : "FAILED", checkpoint_path.c_str());

  // -- Stage 4: reload into a fresh model and verify equivalence -------------
  SthslConfig restored_config = config;
  restored_config.train.epochs = 1;  // only to materialize the network
  restored_config.train.max_steps_per_epoch = 1;
  restored_config.train.validation_days = 0;
  SthslForecaster restored(restored_config);
  restored.Fit(data, train_end);
  Status loaded = LoadCheckpoint(
      const_cast<SthslNet&>(*restored.net()), checkpoint_path);
  std::printf("checkpoint load: %s\n", loaded.ok() ? "ok" : "FAILED");
  if (loaded.ok()) {
    Tensor a = model.PredictDay(data, train_end);
    Tensor b = restored.PredictDay(data, train_end);
    double max_diff = 0.0;
    for (int64_t i = 0; i < a.Numel(); ++i) {
      max_diff = std::max(max_diff,
                          static_cast<double>(std::fabs(a.At(i) - b.At(i))));
    }
    std::printf("restored-model prediction max deviation: %.2e\n", max_diff);
  }

  // -- Stage 5: evaluate + week-ahead outlook ---------------------------------
  CrimeMetrics metrics =
      EvaluateForecaster(model, data, train_end, data.num_days());
  const EvalResult overall = metrics.Overall();
  std::printf("\nsingle-day accuracy: MAE %.4f  MAPE %.4f  RMSE %.4f  "
              "hotspot hit-rate@3 %.2f\n",
              overall.mae, overall.mape, overall.rmse,
              metrics.HitRateAtK(3));

  auto horizon = EvaluateHorizon(model, data, train_end,
                                 std::min(train_end + 10, data.num_days()),
                                 /*horizon=*/7);
  std::printf("\nweek-ahead iterated forecast (error by lead time):\n");
  for (size_t h = 0; h < horizon.size(); ++h) {
    std::printf("  day +%zu: MAE %.4f  MAPE %.4f\n", h + 1, horizon[h].mae,
                horizon[h].mape);
  }
  std::printf("\npipeline complete.\n");
  return 0;
}
