// End-to-end city forecasting pipeline, the workload the paper's intro
// motivates: generate (or load) a citywide crime dataset, train ST-HSL next
// to two reference baselines, then produce the artifacts a public-safety
// analyst would use:
//   * a per-category accuracy report,
//   * a per-region risk board for the next day (top-risk regions),
//   * a sparse-region analysis (does the model stay reliable where crime is
//     rare? — the paper's RQ3).
//
//   ./crime_forecast_city [nyc|chicago] [--csv path]   (csv: load instead
//                                                       of generating)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "baselines/classical.h"
#include "baselines/stshn.h"
#include "core/forecaster.h"
#include "core/sthsl_model.h"
#include "data/generator.h"
#include "data/stats.h"
#include "util/logging.h"

using namespace sthsl;

int main(int argc, char** argv) {
  std::string city = argc > 1 ? argv[1] : "nyc";
  std::string csv_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv_path = argv[i + 1];
  }

  CrimeDataset data;
  if (!csv_path.empty()) {
    auto loaded = CrimeDataset::LoadCsv(csv_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", csv_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    data = loaded.value();
  } else {
    data = GenerateCrimeData(city == "chicago" ? ChicagoSmallPreset()
                                               : NycSmallPreset());
  }
  std::printf("city %s: %lld regions (%lldx%lld), %lld days, %lld "
              "categories\n",
              data.city_name().c_str(),
              static_cast<long long>(data.num_regions()),
              static_cast<long long>(data.rows()),
              static_cast<long long>(data.cols()),
              static_cast<long long>(data.num_days()),
              static_cast<long long>(data.num_categories()));

  const int64_t test_days = data.num_days() / 8;
  const int64_t train_end = data.num_days() - test_days;

  // -- Train ST-HSL and two reference points --------------------------------
  SthslConfig config;
  config.train.window = 14;
  config.train.epochs = 12;
  config.train.max_steps_per_epoch = 16;
  config.num_hyperedges = 32;
  SthslForecaster sthsl_model(config);

  BaselineConfig baseline_config;
  baseline_config.train = config.train;
  StshnForecaster stshn_model(baseline_config);
  HistoricalAverage ha_model;

  std::vector<Forecaster*> models = {&ha_model, &stshn_model, &sthsl_model};
  for (Forecaster* model : models) {
    std::printf("training %s...\n", model->Name().c_str());
    model->Fit(data, train_end);
  }

  // -- Accuracy report -------------------------------------------------------
  std::printf("\n== accuracy over the %lld-day test period ==\n",
              static_cast<long long>(test_days));
  std::printf("%-10s", "model");
  for (const auto& cat : data.category_names()) {
    std::printf("%12s", (cat.substr(0, 7) + " MAE").c_str());
  }
  std::printf("%12s\n", "all MAPE");
  std::vector<CrimeMetrics> all_metrics;
  for (Forecaster* model : models) {
    CrimeMetrics metrics =
        EvaluateForecaster(*model, data, train_end, data.num_days());
    std::printf("%-10s", model->Name().c_str());
    for (int64_t c = 0; c < data.num_categories(); ++c) {
      std::printf("%12.4f", metrics.Category(c).mae);
    }
    std::printf("%12.4f\n", metrics.Overall().mape);
    all_metrics.push_back(metrics);
  }

  // -- Next-day risk board ----------------------------------------------------
  Tensor forecast = sthsl_model.PredictDay(data, data.num_days() - 1);
  std::vector<int64_t> order(static_cast<size_t>(data.num_regions()));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> risk(static_cast<size_t>(data.num_regions()), 0.0);
  for (int64_t r = 0; r < data.num_regions(); ++r) {
    for (int64_t c = 0; c < data.num_categories(); ++c) {
      risk[static_cast<size_t>(r)] += forecast.At({r, c});
    }
  }
  std::sort(order.begin(), order.end(),
            [&](int64_t a, int64_t b) {
              return risk[static_cast<size_t>(a)] >
                     risk[static_cast<size_t>(b)];
            });
  std::printf("\n== ST-HSL risk board for day %lld: top-5 regions ==\n",
              static_cast<long long>(data.num_days() - 1));
  for (int i = 0; i < 5 && i < static_cast<int>(order.size()); ++i) {
    const int64_t r = order[static_cast<size_t>(i)];
    std::printf("  #%d region %lld (row %lld, col %lld): expected %.1f "
                "incidents (",
                i + 1, static_cast<long long>(r),
                static_cast<long long>(r / data.cols()),
                static_cast<long long>(r % data.cols()),
                risk[static_cast<size_t>(r)]);
    for (int64_t c = 0; c < data.num_categories(); ++c) {
      std::printf("%s %.1f%s",
                  data.category_names()[static_cast<size_t>(c)].c_str(),
                  forecast.At({r, c}),
                  c + 1 < data.num_categories() ? ", " : ")\n");
    }
  }

  // -- Sparse-region analysis (RQ3) -------------------------------------------
  const auto sparse_regions = RegionsInDensityRange(data, 0.0, 0.25);
  std::printf("\n== sparse regions (density <= 0.25): %zu regions ==\n",
              sparse_regions.size());
  if (!sparse_regions.empty()) {
    for (size_t m = 0; m < models.size(); ++m) {
      double mae_sum = 0.0;
      int64_t entries = 0;
      for (int64_t c = 0; c < data.num_categories(); ++c) {
        EvalResult r = all_metrics[m].CategoryForRegions(c, sparse_regions);
        mae_sum += r.mae * static_cast<double>(r.evaluated_entries);
        entries += r.evaluated_entries;
      }
      std::printf("  %-10s sparse-region MAE %.4f\n",
                  models[m]->Name().c_str(),
                  entries > 0 ? mae_sum / entries : 0.0);
    }
  }
  return 0;
}
